// Concurrent relation serving: N reader threads hammer Related/LabelsOf/
// ObjectsOf/counting queries on a ConcurrentRelation while one writer
// applies AddPairsBatch/RemovePairsBatch batches.
//
// Linearizability check (same discipline as serve_concurrent_test.cc, on the
// same serving core): the whole write script is generated up front, so the
// relation state after every batch (= every epoch) is known before any
// thread starts. Each query reports the epoch of the snapshot it observed;
// the answer must equal the precomputed answer at exactly that epoch. All
// reader-side comparisons collect failures into a mutex-guarded list (gtest
// assertions stay on the main thread).
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <memory>
#include <mutex>
#include <set>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "serve/concurrent_relation.h"
#include "serve/relation_index.h"
#include "util/rng.h"

namespace dyndex {
namespace {

constexpr int kReaders = 4;
constexpr uint32_t kObjects = 48;
constexpr uint32_t kLabels = 40;

struct RelBatch {
  bool is_add = false;
  RelationPairs pairs;
  uint64_t expected_applied = 0;  // #new on add, #removed on remove
};

/// Per-epoch expected answers for the fixed probe set.
struct EpochState {
  std::vector<bool> related;                        // per probe pair
  std::vector<std::vector<uint32_t>> labels_of;     // per probe object, sorted
  std::vector<std::vector<uint32_t>> objects_of;    // per probe label, sorted
  uint64_t num_pairs = 0;
};

// The full write schedule plus everything readers need, all computed before
// any thread starts; immutable afterwards.
struct RelScript {
  std::vector<RelBatch> batches;
  std::vector<std::pair<uint32_t, uint32_t>> probe_pairs;
  std::vector<uint32_t> probe_objects;
  std::vector<uint32_t> probe_labels;
  std::vector<EpochState> expected;  // expected[e] = state after e batches
};

RelScript MakeRelScript(uint64_t seed, int num_batches) {
  RelScript s;
  Rng rng(seed);
  for (int i = 0; i < 10; ++i) {
    s.probe_pairs.push_back({static_cast<uint32_t>(rng.Below(kObjects)),
                             static_cast<uint32_t>(rng.Below(kLabels))});
    s.probe_objects.push_back(static_cast<uint32_t>(rng.Below(kObjects)));
    s.probe_labels.push_back(static_cast<uint32_t>(rng.Below(kLabels)));
  }
  std::set<std::pair<uint32_t, uint32_t>> model;
  auto snapshot = [&] {
    EpochState st;
    st.num_pairs = model.size();
    for (auto [o, a] : s.probe_pairs) {
      st.related.push_back(model.count({o, a}) > 0);
    }
    for (uint32_t o : s.probe_objects) {
      std::vector<uint32_t> labels;
      for (auto [oo, aa] : model) {
        if (oo == o) labels.push_back(aa);
      }
      st.labels_of.push_back(std::move(labels));
    }
    for (uint32_t a : s.probe_labels) {
      std::vector<uint32_t> objects;
      for (auto [oo, aa] : model) {
        if (aa == a) objects.push_back(oo);
      }
      st.objects_of.push_back(std::move(objects));
    }
    s.expected.push_back(std::move(st));
  };
  snapshot();  // epoch 0: empty
  for (int b = 0; b < num_batches; ++b) {
    RelBatch batch;
    // Batch 0 is a large cold-start add (the bulk promotion path); later
    // batches alternate adds and removes with overlap against live pairs.
    batch.is_add = b == 0 || b % 3 != 0;
    if (batch.is_add) {
      uint64_t n = b == 0 ? 300 : rng.Below(30) + 1;
      for (uint64_t i = 0; i < n; ++i) {
        uint32_t o = static_cast<uint32_t>(rng.Below(kObjects));
        uint32_t a = static_cast<uint32_t>(rng.Below(kLabels));
        batch.pairs.push_back({o, a});
        batch.expected_applied += model.insert({o, a}).second ? 1 : 0;
      }
    } else {
      uint64_t n = rng.Below(20) + 1;
      for (uint64_t i = 0; i < n && !model.empty(); ++i) {
        if (rng.Below(4) == 0) {  // occasionally a miss
          uint32_t o = static_cast<uint32_t>(rng.Below(kObjects));
          uint32_t a = static_cast<uint32_t>(rng.Below(kLabels));
          batch.pairs.push_back({o, a});
          batch.expected_applied += model.erase({o, a});
        } else {
          auto it = model.begin();
          std::advance(it, static_cast<int64_t>(rng.Below(model.size())));
          batch.pairs.push_back(*it);
          model.erase(it);
          ++batch.expected_applied;
        }
      }
    }
    s.batches.push_back(std::move(batch));
    snapshot();
  }
  return s;
}

class FailureLog {
 public:
  void Add(std::string msg) {
    std::lock_guard<std::mutex> lock(mu_);
    if (failures_.size() < 20) failures_.push_back(std::move(msg));
  }
  std::vector<std::string> Take() {
    std::lock_guard<std::mutex> lock(mu_);
    return failures_;
  }

 private:
  std::mutex mu_;
  std::vector<std::string> failures_;
};

void ReaderLoop(const ConcurrentRelation& rel, const RelScript& script,
                uint64_t seed, const std::atomic<bool>& done,
                FailureLog* failures, uint64_t* queries_run) {
  Rng rng(seed);
  uint64_t n = 0;
  while (!done.load(std::memory_order_acquire)) {
    uint32_t p = static_cast<uint32_t>(rng.Below(script.probe_pairs.size()));
    uint64_t epoch = 0;
    switch (rng.Below(4)) {
      case 0: {
        bool got = rel.Related(script.probe_pairs[p].first,
                               script.probe_pairs[p].second, &epoch);
        if (got != script.expected[epoch].related[p]) {
          failures->Add("Related mismatch: probe " + std::to_string(p) +
                        " at epoch " + std::to_string(epoch));
        }
        break;
      }
      case 1: {
        auto got = rel.LabelsOf(script.probe_objects[p], &epoch);
        std::sort(got.begin(), got.end());
        const auto& want = script.expected[epoch].labels_of[p];
        if (got != want) {
          failures->Add("LabelsOf mismatch: object " +
                        std::to_string(script.probe_objects[p]) +
                        " at epoch " + std::to_string(epoch) + ": got " +
                        std::to_string(got.size()) + " labels, want " +
                        std::to_string(want.size()));
        }
        if (rel.CountLabelsOf(script.probe_objects[p], &epoch) !=
            script.expected[epoch].labels_of[p].size()) {
          failures->Add("CountLabelsOf mismatch at epoch " +
                        std::to_string(epoch));
        }
        break;
      }
      case 2: {
        auto got = rel.ObjectsOf(script.probe_labels[p], &epoch);
        std::sort(got.begin(), got.end());
        const auto& want = script.expected[epoch].objects_of[p];
        if (got != want) {
          failures->Add("ObjectsOf mismatch: label " +
                        std::to_string(script.probe_labels[p]) +
                        " at epoch " + std::to_string(epoch));
        }
        if (rel.CountObjectsOf(script.probe_labels[p], &epoch) !=
            script.expected[epoch].objects_of[p].size()) {
          failures->Add("CountObjectsOf mismatch at epoch " +
                        std::to_string(epoch));
        }
        break;
      }
      default: {
        uint64_t got = rel.num_pairs(&epoch);
        if (got != script.expected[epoch].num_pairs) {
          failures->Add("num_pairs mismatch at epoch " +
                        std::to_string(epoch) + ": got " +
                        std::to_string(got) + ", want " +
                        std::to_string(script.expected[epoch].num_pairs));
        }
        break;
      }
    }
    ++n;
  }
  *queries_run = n;
}

void RunConcurrentRelationScenario(std::unique_ptr<RelationIndex> backend,
                                   uint64_t seed, int num_batches) {
  RelScript script = MakeRelScript(seed, num_batches);
  ConcurrentRelation rel(std::move(backend));
  FailureLog failures;
  std::atomic<bool> done{false};
  std::vector<std::thread> readers;
  std::vector<uint64_t> query_counts(kReaders, 0);
  for (int r = 0; r < kReaders; ++r) {
    readers.emplace_back(ReaderLoop, std::cref(rel), std::cref(script),
                         seed * 1000 + r, std::cref(done), &failures,
                         &query_counts[r]);
  }
  // Writer: apply the script, checking the predicted counts; yield a little
  // so readers overlap with many distinct epochs.
  for (const RelBatch& batch : script.batches) {
    uint64_t applied = batch.is_add ? rel.AddPairsBatch(batch.pairs)
                                    : rel.RemovePairsBatch(batch.pairs);
    if (applied != batch.expected_applied) {
      failures.Add(std::string(batch.is_add ? "Add" : "Remove") +
                   "PairsBatch applied " + std::to_string(applied) +
                   ", want " + std::to_string(batch.expected_applied));
    }
    std::this_thread::sleep_for(std::chrono::microseconds(200));
  }
  done.store(true, std::memory_order_release);
  for (auto& t : readers) t.join();
  for (const std::string& f : failures.Take()) ADD_FAILURE() << f;
  uint64_t total_queries = 0;
  for (uint64_t c : query_counts) total_queries += c;
  EXPECT_GT(total_queries, 0u);
  // Quiesce and verify the final state exhaustively against the model.
  uint64_t final_epoch = rel.epoch();
  ASSERT_EQ(final_epoch, script.batches.size());
  const EpochState& want = script.expected[final_epoch];
  EXPECT_EQ(rel.num_pairs(), want.num_pairs);
  for (uint32_t p = 0; p < script.probe_objects.size(); ++p) {
    auto got = rel.LabelsOf(script.probe_objects[p]);
    std::sort(got.begin(), got.end());
    EXPECT_EQ(got, want.labels_of[p]) << "probe object " << p;
  }
  rel.unsynchronized().CheckInvariants();
}

RelationIndexOptions SmallRelOptions() {
  RelationIndexOptions opt;
  opt.min_c0 = 32;  // frequent merges/purges while readers are live
  opt.tau = 3;
  opt.baseline_max_objects = kObjects;
  opt.baseline_max_labels = kLabels;
  return opt;
}

TEST(ServeRelationConcurrent, ReadersOverTheorem2) {
  RunConcurrentRelationScenario(
      MakeRelationIndex(RelationBackend::kTheorem2, SmallRelOptions()), 71,
      120);
}

TEST(ServeRelationConcurrent, ReadersOverBaseline) {
  RunConcurrentRelationScenario(
      MakeRelationIndex(RelationBackend::kBaseline, SmallRelOptions()), 72,
      90);
}

TEST(ServeRelationConcurrent, ReadersOverGraphView) {
  RunConcurrentRelationScenario(
      MakeRelationIndex(RelationBackend::kGraph, SmallRelOptions()), 73, 120);
}

// The speed tier republishes adjacency-set reps and directory tables far
// more often than the succinct backends publish anything, so this leans on
// the single-pointer/retire discipline hardest (optimistic readers race the
// pointer churn; TSan runs this under lock-assisted validation).
TEST(ServeRelationConcurrent, ReadersOverFastTier) {
  RunConcurrentRelationScenario(
      MakeRelationIndex(RelationBackend::kFast, SmallRelOptions()), 74, 150);
}

// A second Theorem 2 run with a different seed: more remove pressure crossing
// purge/rebuild boundaries under live readers.
TEST(ServeRelationConcurrent, Theorem2SecondSeed) {
  RunConcurrentRelationScenario(
      MakeRelationIndex(RelationBackend::kTheorem2, SmallRelOptions()), 1729,
      150);
}

}  // namespace
}  // namespace dyndex
