// Seeded differential fuzzing of the dynamic relation stack against a
// std::set<pair> model: mixed point + bulk AddPair/RemovePair driven through
// the RelationIndex facade for every backend (Theorem 2, the Navarro-Nekrich
// baseline, and the Theorem 3 graph view), with C0 sized so rounds keep
// crossing the purge, merge-cascade and sub-collection-promotion boundaries.
// Every failure message carries the seed that produced it.
#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <set>
#include <utility>
#include <vector>

#include "gen/relation_gen.h"
#include "serve/relation_index.h"
#include "util/rng.h"

namespace dyndex {
namespace {

using PairSet = std::set<std::pair<uint32_t, uint32_t>>;

constexpr uint32_t kObjects = 48;
constexpr uint32_t kLabels = 40;

RelationIndexOptions TightOptions() {
  RelationIndexOptions opt;
  // A tiny C0 and aggressive purge knob force frequent merges, purges and
  // level promotions; the baseline capacities bound the id universe.
  opt.min_c0 = 16;
  opt.tau = 3;
  opt.baseline_max_objects = kObjects;
  opt.baseline_max_labels = kLabels;
  return opt;
}

void CheckSampled(const RelationIndex& rel, const PairSet& model, Rng& rng,
                  uint64_t seed) {
  ASSERT_EQ(rel.num_pairs(), model.size()) << "seed=" << seed;
  for (int probe = 0; probe < 12; ++probe) {
    uint32_t o = static_cast<uint32_t>(rng.Below(kObjects));
    uint32_t a = static_cast<uint32_t>(rng.Below(kLabels));
    ASSERT_EQ(rel.Related(o, a), model.count({o, a}) > 0)
        << "seed=" << seed << " o=" << o << " a=" << a;
  }
  uint32_t o = static_cast<uint32_t>(rng.Below(kObjects));
  std::vector<uint32_t> labels = rel.LabelsOf(o);
  std::sort(labels.begin(), labels.end());
  std::vector<uint32_t> expect_labels;
  for (auto [oo, aa] : model) {
    if (oo == o) expect_labels.push_back(aa);
  }
  ASSERT_EQ(labels, expect_labels) << "seed=" << seed << " o=" << o;
  ASSERT_EQ(rel.CountLabelsOf(o), expect_labels.size())
      << "seed=" << seed << " o=" << o;
  uint32_t a = static_cast<uint32_t>(rng.Below(kLabels));
  std::vector<uint32_t> objects = rel.ObjectsOf(a);
  std::sort(objects.begin(), objects.end());
  std::vector<uint32_t> expect_objects;
  for (auto [oo, aa] : model) {
    if (aa == a) expect_objects.push_back(oo);
  }
  ASSERT_EQ(objects, expect_objects) << "seed=" << seed << " a=" << a;
  ASSERT_EQ(rel.CountObjectsOf(a), expect_objects.size())
      << "seed=" << seed << " a=" << a;
}

void CheckFull(const RelationIndex& rel, const PairSet& model, uint64_t seed) {
  ASSERT_EQ(rel.num_pairs(), model.size()) << "seed=" << seed;
  for (uint32_t o = 0; o < kObjects; ++o) {
    std::vector<uint32_t> labels = rel.LabelsOf(o);
    std::sort(labels.begin(), labels.end());
    std::vector<uint32_t> expect;
    for (auto [oo, aa] : model) {
      if (oo == o) expect.push_back(aa);
    }
    ASSERT_EQ(labels, expect) << "seed=" << seed << " o=" << o;
    ASSERT_EQ(rel.CountLabelsOf(o), expect.size())
        << "seed=" << seed << " o=" << o;
  }
  for (uint32_t a = 0; a < kLabels; ++a) {
    std::vector<uint32_t> objects = rel.ObjectsOf(a);
    std::sort(objects.begin(), objects.end());
    std::vector<uint32_t> expect;
    for (auto [oo, aa] : model) {
      if (aa == a) expect.push_back(oo);
    }
    ASSERT_EQ(objects, expect) << "seed=" << seed << " a=" << a;
    ASSERT_EQ(rel.CountObjectsOf(a), expect.size())
        << "seed=" << seed << " a=" << a;
  }
  rel.CheckInvariants();
}

// One churn round: random point + bulk ops against the model, periodically
// verified; an exhaustive end-of-round pass.
void FuzzRound(RelationBackend backend, uint64_t seed, uint64_t steps) {
  Rng rng(seed);
  std::unique_ptr<RelationIndex> rel =
      MakeRelationIndex(backend, TightOptions());
  PairSet model;
  // Half the rounds start from a cold bulk load large enough to promote the
  // whole batch straight into a compressed sub-collection.
  if (rng.Chance(0.5)) {
    RelationPairs batch;
    uint64_t n = rng.Below(600) + 50;
    for (uint64_t i = 0; i < n; ++i) {
      uint32_t o = static_cast<uint32_t>(rng.Below(kObjects));
      uint32_t a = static_cast<uint32_t>(rng.Below(kLabels));
      batch.push_back({o, a});  // duplicates intentionally kept
      model.insert({o, a});
    }
    ASSERT_EQ(rel->AddPairsBulk(batch), model.size()) << "seed=" << seed;
  }
  for (uint64_t step = 0; step < steps; ++step) {
    uint64_t op = rng.Below(100);
    uint32_t o = static_cast<uint32_t>(rng.Below(kObjects));
    uint32_t a = static_cast<uint32_t>(rng.Below(kLabels));
    if (op < 40) {
      ASSERT_EQ(rel->AddPair(o, a), model.insert({o, a}).second)
          << "seed=" << seed << " step=" << step;
    } else if (op < 70) {
      ASSERT_EQ(rel->RemovePair(o, a), model.erase({o, a}) > 0)
          << "seed=" << seed << " step=" << step;
    } else if (op < 80) {
      // Bulk add: big enough to overflow C0 regularly (promotion boundary),
      // with duplicates both within the batch and against live pairs.
      RelationPairs batch;
      uint64_t n = rng.Below(120) + 1;
      uint64_t fresh = 0;
      for (uint64_t i = 0; i < n; ++i) {
        uint32_t bo = static_cast<uint32_t>(rng.Below(kObjects));
        uint32_t ba = static_cast<uint32_t>(rng.Below(kLabels));
        batch.push_back({bo, ba});
        fresh += model.insert({bo, ba}).second ? 1 : 0;
      }
      ASSERT_EQ(rel->AddPairsBulk(batch), fresh)
          << "seed=" << seed << " step=" << step;
    } else if (op < 88) {
      // Burst of removes (drives dead-fraction purges and rebuilds).
      uint64_t burst = rng.Below(40) + 1;
      for (uint64_t k = 0; k < burst && !model.empty(); ++k) {
        auto it = model.begin();
        std::advance(it, static_cast<int64_t>(rng.Below(model.size())));
        ASSERT_TRUE(rel->RemovePair(it->first, it->second))
            << "seed=" << seed << " step=" << step;
        model.erase(it);
      }
    } else {
      CheckSampled(*rel, model, rng, seed);
    }
    if (step % 251 == 250) {
      CheckSampled(*rel, model, rng, seed);
      rel->CheckInvariants();
    }
  }
  CheckFull(*rel, model, seed);
}

TEST(RelationFuzzTest, Theorem2MixedChurnSeedSweep) {
  for (uint64_t seed = 1; seed <= 10; ++seed) {
    FuzzRound(RelationBackend::kTheorem2, seed, 1500);
  }
}

TEST(RelationFuzzTest, BaselineMixedChurnSeedSweep) {
  for (uint64_t seed = 100; seed <= 105; ++seed) {
    FuzzRound(RelationBackend::kBaseline, seed, 1200);
  }
}

TEST(RelationFuzzTest, GraphViewMixedChurnSeedSweep) {
  for (uint64_t seed = 200; seed <= 205; ++seed) {
    FuzzRound(RelationBackend::kGraph, seed, 1200);
  }
}

// Section 5's deletion-only structure behind the rebuild-on-insert shell:
// every point insert is a full export + rebuild and every purge crosses the
// ExportLivePairs boundary, so this sweep hammers exactly the purge/export
// edges DynamicRelation's dense-slot usage never reaches (empty relations,
// shrinking id universes, queries beyond num_objects after a purge).
TEST(RelationFuzzTest, DeletionOnlyMixedChurnSeedSweep) {
  for (uint64_t seed = 300; seed <= 305; ++seed) {
    FuzzRound(RelationBackend::kDeletionOnly, seed, 600);
  }
}

// The uncompressed speed tier: sorted-inline <-> hash-set promotion and
// demotion boundaries, the sticky page directory and the mirrored reverse
// index all sit under this churn (degrees over 48x40 ids cross the default
// inline_threshold=12 constantly).
TEST(RelationFuzzTest, FastMixedChurnSeedSweep) {
  for (uint64_t seed = 400; seed <= 407; ++seed) {
    FuzzRound(RelationBackend::kFast, seed, 1500);
  }
}

// Same sweep with inline_threshold=1 (everything hashes immediately) and 64
// (nothing ever promotes): both degenerate representations must match the
// model on their own.
TEST(RelationFuzzTest, FastThresholdExtremesSeedSweep) {
  for (uint32_t threshold : {1u, 64u}) {
    for (uint64_t seed = 420; seed <= 422; ++seed) {
      Rng rng(seed);
      RelationIndexOptions opt = TightOptions();
      opt.fast_inline_threshold = threshold;
      auto rel = MakeRelationIndex(RelationBackend::kFast, opt);
      PairSet model;
      for (uint64_t step = 0; step < 900; ++step) {
        uint32_t o = static_cast<uint32_t>(rng.Below(kObjects));
        uint32_t a = static_cast<uint32_t>(rng.Below(kLabels));
        if (rng.Chance(0.55)) {
          ASSERT_EQ(rel->AddPair(o, a), model.insert({o, a}).second)
              << "threshold=" << threshold << " seed=" << seed;
        } else {
          ASSERT_EQ(rel->RemovePair(o, a), model.erase({o, a}) > 0)
              << "threshold=" << threshold << " seed=" << seed;
        }
        if (step % 97 == 96) rel->CheckInvariants();
      }
      CheckFull(*rel, model, seed);
    }
  }
}

// Every backend replaying the same generated churn stream (the workload
// source the frontier bench measures) against the set model — the generator
// and the differential harness share one definition of the workload.
TEST(RelationFuzzTest, ChurnStreamDifferentialSweepAllBackends) {
  for (RelationBackend backend :
       {RelationBackend::kTheorem2, RelationBackend::kBaseline,
        RelationBackend::kGraph, RelationBackend::kDeletionOnly,
        RelationBackend::kFast}) {
    const uint64_t seed = 7100 + static_cast<uint64_t>(backend);
    Rng rng(seed);
    ChurnStreamOptions copt;
    copt.num_ops = backend == RelationBackend::kDeletionOnly ? 400 : 1000;
    copt.num_objects = kObjects;
    copt.num_labels = kLabels;
    copt.zipf_theta = 0.7;
    copt.add_fraction = 0.45;
    copt.remove_fraction = 0.3;
    std::vector<ChurnEvent> stream = GenChurnStream(rng, copt);
    auto rel = MakeRelationIndex(backend, TightOptions());
    PairSet model;
    for (size_t i = 0; i < stream.size(); ++i) {
      const ChurnEvent& ev = stream[i];
      switch (ev.op) {
        case ChurnOp::kAdd:
          ASSERT_EQ(rel->AddPair(ev.object, ev.label),
                    model.insert({ev.object, ev.label}).second)
              << rel->backend_name() << " i=" << i;
          break;
        case ChurnOp::kRemove:
          ASSERT_EQ(rel->RemovePair(ev.object, ev.label),
                    model.erase({ev.object, ev.label}) > 0)
              << rel->backend_name() << " i=" << i;
          break;
        case ChurnOp::kRelated:
          ASSERT_EQ(rel->Related(ev.object, ev.label),
                    model.count({ev.object, ev.label}) > 0)
              << rel->backend_name() << " i=" << i;
          break;
        case ChurnOp::kLabelsOf: {
          std::vector<uint32_t> got = rel->LabelsOf(ev.object);
          std::sort(got.begin(), got.end());
          std::vector<uint32_t> expect;
          for (auto [o, a] : model) {
            if (o == ev.object) expect.push_back(a);
          }
          ASSERT_EQ(got, expect) << rel->backend_name() << " i=" << i;
          break;
        }
        case ChurnOp::kObjectsOf: {
          std::vector<uint32_t> got = rel->ObjectsOf(ev.label);
          std::sort(got.begin(), got.end());
          std::vector<uint32_t> expect;
          for (auto [o, a] : model) {
            if (a == ev.label) expect.push_back(o);
          }
          ASSERT_EQ(got, expect) << rel->backend_name() << " i=" << i;
          break;
        }
      }
    }
    CheckFull(*rel, model, seed);
  }
}

// The cold-start bulk path at sizes that land the batch 1..3 levels up the
// schedule, checked pair-for-pair against a pairwise-built twin.
TEST(RelationFuzzTest, BulkColdStartMatchesPairwiseTwin) {
  for (uint64_t n : {10ull, 100ull, 1000ull, 5000ull, 20000ull}) {
    Rng rng(n * 17 + 3);
    RelationPairs batch;
    for (uint64_t i = 0; i < n; ++i) {
      batch.push_back({static_cast<uint32_t>(rng.Below(200)),
                       static_cast<uint32_t>(rng.Below(150))});
    }
    RelationIndexOptions opt;
    opt.min_c0 = 64;
    auto bulk = MakeRelationIndex(RelationBackend::kTheorem2, opt);
    auto pairwise = MakeRelationIndex(RelationBackend::kTheorem2, opt);
    uint64_t bulk_added = bulk->AddPairsBulk(batch);
    uint64_t pair_added = 0;
    for (auto [o, a] : batch) pair_added += pairwise->AddPair(o, a);
    ASSERT_EQ(bulk_added, pair_added) << "n=" << n;
    ASSERT_EQ(bulk->num_pairs(), pairwise->num_pairs()) << "n=" << n;
    bulk->CheckInvariants();
    for (uint32_t o = 0; o < 200; ++o) {
      std::vector<uint32_t> lb = bulk->LabelsOf(o);
      std::vector<uint32_t> lp = pairwise->LabelsOf(o);
      std::sort(lb.begin(), lb.end());
      std::sort(lp.begin(), lp.end());
      ASSERT_EQ(lb, lp) << "n=" << n << " o=" << o;
    }
    // And the bulk-loaded structure keeps mutating correctly.
    ASSERT_TRUE(bulk->RemovePair(batch[0].first, batch[0].second));
    ASSERT_FALSE(bulk->Related(batch[0].first, batch[0].second));
    ASSERT_TRUE(bulk->AddPair(batch[0].first, batch[0].second));
    bulk->CheckInvariants();
  }
}

// Same twin check for the speed tier: sizes straddle the inline->hash
// promotion per set (avg degree n/200 crosses 12 between 1000 and 20000),
// so bulk-built and pairwise-built structures take different representation
// paths to what must be the same pair set.
TEST(RelationFuzzTest, FastBulkColdStartMatchesPairwiseTwin) {
  for (uint64_t n : {10ull, 100ull, 1000ull, 5000ull, 20000ull}) {
    Rng rng(n * 29 + 11);
    RelationPairs batch;
    for (uint64_t i = 0; i < n; ++i) {
      batch.push_back({static_cast<uint32_t>(rng.Below(200)),
                       static_cast<uint32_t>(rng.Below(150))});
    }
    auto bulk = MakeRelationIndex(RelationBackend::kFast, {});
    auto pairwise = MakeRelationIndex(RelationBackend::kFast, {});
    uint64_t bulk_added = bulk->AddPairsBulk(batch);
    uint64_t pair_added = 0;
    for (auto [o, a] : batch) pair_added += pairwise->AddPair(o, a);
    ASSERT_EQ(bulk_added, pair_added) << "n=" << n;
    ASSERT_EQ(bulk->num_pairs(), pairwise->num_pairs()) << "n=" << n;
    bulk->CheckInvariants();
    pairwise->CheckInvariants();
    RelationPairs bulk_pairs, pairwise_pairs;
    bulk->ExportLivePairs(&bulk_pairs);
    pairwise->ExportLivePairs(&pairwise_pairs);
    ASSERT_EQ(bulk_pairs, pairwise_pairs) << "n=" << n;
    for (uint32_t a = 0; a < 150; ++a) {
      std::vector<uint32_t> ob = bulk->ObjectsOf(a);
      std::vector<uint32_t> op = pairwise->ObjectsOf(a);
      std::sort(ob.begin(), ob.end());
      std::sort(op.begin(), op.end());
      ASSERT_EQ(ob, op) << "n=" << n << " a=" << a;
    }
    ASSERT_TRUE(bulk->RemovePair(batch[0].first, batch[0].second));
    ASSERT_FALSE(bulk->Related(batch[0].first, batch[0].second));
    ASSERT_TRUE(bulk->AddPair(batch[0].first, batch[0].second));
    bulk->CheckInvariants();
  }
}

}  // namespace
}  // namespace dyndex
