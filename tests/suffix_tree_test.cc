#include "gst/suffix_tree.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <vector>

#include "gen/text_gen.h"
#include "tests/testing_util.h"
#include "util/rng.h"

namespace dyndex {
namespace {

using Occ = std::pair<DocId, uint64_t>;

std::vector<Occ> TreeOccurrences(const SuffixTreeCollection& st,
                                 const std::vector<Symbol>& p) {
  std::vector<Occ> out;
  st.ForEachOccurrence(p, [&](DocId id, uint64_t off) {
    out.emplace_back(id, off);
  });
  std::sort(out.begin(), out.end());
  return out;
}

// Occurrences over a doc-id-keyed map collection.
std::vector<Occ> MapOccurrences(
    const std::map<DocId, std::vector<Symbol>>& docs,
    const std::vector<Symbol>& p) {
  std::vector<Occ> out;
  for (const auto& [id, doc] : docs) {
    if (doc.size() < p.size()) continue;
    for (uint64_t i = 0; i + p.size() <= doc.size(); ++i) {
      bool ok = true;
      for (uint64_t j = 0; j < p.size(); ++j) {
        if (doc[i + j] != p[j]) {
          ok = false;
          break;
        }
      }
      if (ok) out.emplace_back(id, i);
    }
  }
  return out;
}

TEST(SuffixTreeTest, SingleDocAllSubstrings) {
  SuffixTreeCollection st;
  std::vector<Symbol> doc{2, 3, 2, 3, 4, 2};
  st.Insert(7, doc);
  std::map<DocId, std::vector<Symbol>> model{{7, doc}};
  for (uint64_t from = 0; from < doc.size(); ++from) {
    for (uint64_t len = 1; from + len <= doc.size(); ++len) {
      std::vector<Symbol> p(doc.begin() + static_cast<int64_t>(from),
                            doc.begin() + static_cast<int64_t>(from + len));
      ASSERT_EQ(TreeOccurrences(st, p), MapOccurrences(model, p))
          << "from=" << from << " len=" << len;
    }
  }
}

TEST(SuffixTreeTest, NoFalsePositives) {
  SuffixTreeCollection st;
  st.Insert(1, {2, 2, 2, 2});
  EXPECT_TRUE(TreeOccurrences(st, {3}).empty());
  EXPECT_TRUE(TreeOccurrences(st, {2, 3}).empty());
  EXPECT_TRUE(TreeOccurrences(st, {2, 2, 2, 2, 2}).empty());
  EXPECT_EQ(st.Count({2, 2}), 3u);
}

TEST(SuffixTreeTest, MultipleDocsSharedSubstrings) {
  SuffixTreeCollection st;
  std::map<DocId, std::vector<Symbol>> model;
  model[10] = {2, 3, 4};
  model[20] = {3, 4, 5};
  model[30] = {2, 3, 4};  // identical content to doc 10
  for (const auto& [id, doc] : model) st.Insert(id, doc);
  EXPECT_EQ(TreeOccurrences(st, {3, 4}), MapOccurrences(model, {3, 4}));
  EXPECT_EQ(st.Count({3, 4}), 3u);
  EXPECT_EQ(st.Count({2, 3, 4}), 2u);
}

TEST(SuffixTreeTest, EraseHidesOccurrences) {
  SuffixTreeCollection st;
  st.Insert(1, {2, 3, 4});
  st.Insert(2, {2, 3, 5});
  EXPECT_EQ(st.Count({2, 3}), 2u);
  EXPECT_TRUE(st.Erase(1));
  EXPECT_EQ(st.Count({2, 3}), 1u);
  EXPECT_FALSE(st.Contains(1));
  EXPECT_FALSE(st.Erase(1));  // double erase
  auto occ = TreeOccurrences(st, {2, 3});
  ASSERT_EQ(occ.size(), 1u);
  EXPECT_EQ(occ[0].first, 2u);
}

TEST(SuffixTreeTest, RebuildAfterManyDeletions) {
  SuffixTreeCollection st;
  Rng rng(8);
  std::map<DocId, std::vector<Symbol>> model;
  for (DocId id = 0; id < 40; ++id) {
    auto doc = UniformText(rng, 50, 4);
    st.Insert(id, doc);
    model[id] = doc;
  }
  // Delete 3/4 of the docs; rebuild must trigger (dead >= live).
  for (DocId id = 0; id < 30; ++id) {
    st.Erase(id);
    model.erase(id);
  }
  EXPECT_EQ(st.num_live_docs(), 10u);
  EXPECT_EQ(st.dead_symbols(), 0u);  // rebuild purged the dead docs
  for (int q = 0; q < 30; ++q) {
    std::vector<std::vector<Symbol>> live_docs;
    for (const auto& [id, d] : model) live_docs.push_back(d);
    auto p = SamplePattern(rng, live_docs, rng.Range(1, 5), 4);
    ASSERT_EQ(TreeOccurrences(st, p), MapOccurrences(model, p));
  }
}

TEST(SuffixTreeTest, RandomizedModelChurn) {
  SuffixTreeCollection st;
  std::map<DocId, std::vector<Symbol>> model;
  Rng rng(77);
  DocId next_id = 0;
  for (int step = 0; step < 400; ++step) {
    uint64_t op = rng.Below(10);
    if (op < 5 || model.empty()) {
      auto doc = UniformText(rng, rng.Range(1, 120), 5);
      st.Insert(next_id, doc);
      model[next_id] = doc;
      ++next_id;
    } else if (op < 8) {
      auto it = model.begin();
      std::advance(it, static_cast<int64_t>(rng.Below(model.size())));
      st.Erase(it->first);
      model.erase(it);
    } else {
      std::vector<std::vector<Symbol>> live;
      for (const auto& [id, d] : model) live.push_back(d);
      auto p = SamplePattern(rng, live, rng.Range(1, 8), 5);
      ASSERT_EQ(TreeOccurrences(st, p), MapOccurrences(model, p))
          << "step " << step;
      ASSERT_EQ(st.Count(p), MapOccurrences(model, p).size());
    }
  }
  // Final verification over every remaining doc.
  uint64_t live_syms = 0;
  for (const auto& [id, d] : model) {
    ASSERT_TRUE(st.Contains(id));
    ASSERT_EQ(st.DocLen(id), d.size());
    live_syms += d.size();
  }
  EXPECT_EQ(st.live_symbols(), live_syms);
}

TEST(SuffixTreeTest, ExtractSlices) {
  SuffixTreeCollection st;
  Rng rng(9);
  auto doc = UniformText(rng, 200, 10);
  st.Insert(5, doc);
  for (int q = 0; q < 40; ++q) {
    uint64_t from = rng.Below(doc.size());
    uint64_t len = rng.Below(doc.size() - from + 1);
    std::vector<Symbol> got;
    st.Extract(5, from, len, &got);
    std::vector<Symbol> expect(doc.begin() + static_cast<int64_t>(from),
                               doc.begin() + static_cast<int64_t>(from + len));
    ASSERT_EQ(got, expect);
  }
}

TEST(SuffixTreeTest, ExportLiveDocsDrainsEverything) {
  SuffixTreeCollection st;
  st.Insert(1, {2, 3});
  st.Insert(2, {4, 5, 6});
  st.Insert(3, {7});
  st.Erase(2);
  std::vector<Document> out;
  st.ExportLiveDocs(&out);
  ASSERT_EQ(out.size(), 2u);
  EXPECT_EQ(out[0].id, 1u);
  EXPECT_EQ(out[0].symbols, (std::vector<Symbol>{2, 3}));
  EXPECT_EQ(out[1].id, 3u);
  EXPECT_EQ(st.live_symbols(), 0u);
  EXPECT_EQ(st.num_live_docs(), 0u);
  // The structure is reusable afterwards.
  st.Insert(9, {2, 2});
  EXPECT_EQ(st.Count({2}), 2u);
}

TEST(SuffixTreeTest, PeriodicAndOverlappingPatterns) {
  SuffixTreeCollection st;
  std::vector<Symbol> doc;
  for (int i = 0; i < 60; ++i) doc.push_back(2);
  st.Insert(0, doc);
  EXPECT_EQ(st.Count({2, 2, 2}), 58u);  // overlapping matches
  std::map<DocId, std::vector<Symbol>> model{{0, doc}};
  EXPECT_EQ(TreeOccurrences(st, {2, 2}), MapOccurrences(model, {2, 2}));
}

TEST(SuffixTreeTest, IdenticalDocsManyCopies) {
  SuffixTreeCollection st;
  std::vector<Symbol> doc{2, 3, 4, 2, 3};
  for (DocId id = 0; id < 25; ++id) st.Insert(id, doc);
  EXPECT_EQ(st.Count({2, 3}), 50u);
  for (DocId id = 0; id < 25; id += 2) st.Erase(id);
  EXPECT_EQ(st.Count({2, 3}), 24u);
}

}  // namespace
}  // namespace dyndex
