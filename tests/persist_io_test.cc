// Fault matrix for the persistence mechanics (persist/): every fault mode
// the recovery story claims to survive, produced deterministically against
// MemEnv's crash simulation and FaultEnv's scripted call failures, with the
// required outcome asserted per mode:
//
//   torn tail / truncation / bit flip in the WAL  -> longest valid prefix
//   bit flip / truncation / short read in a snapshot -> kCorruption (loud)
//   failed fsync / failed append                  -> surfaced IoError
//
// Nothing in this file may ever observe a *wrong* frame or section — only
// fewer frames, or a loud error.

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "gtest/gtest.h"
#include "persist/crc32c.h"
#include "persist/env.h"
#include "persist/fault_env.h"
#include "persist/snapshot.h"
#include "persist/status.h"
#include "persist/wal.h"

namespace dyndex {
namespace persist {
namespace {

std::string Payload(int i) {
  return "payload-" + std::to_string(i) + std::string(i % 7, 'x');
}

/// Writes a synced WAL of `n` frames at `path`; returns the file size.
uint64_t WriteLog(Env* env, const std::string& path, int n) {
  std::unique_ptr<WalWriter> writer;
  EXPECT_TRUE(WalWriter::Create(env, path, &writer).ok());
  for (int i = 0; i < n; ++i) {
    EXPECT_TRUE(writer->Append(i + 1, Payload(i)).ok());
  }
  EXPECT_TRUE(writer->Sync().ok());
  uint64_t size = 0;
  EXPECT_TRUE(env->GetFileSize(path, &size).ok());
  return size;
}

TEST(Crc32cTest, KnownVector) {
  // The iSCSI CRC-32C check value for "123456789".
  EXPECT_EQ(Crc32c("123456789", 9), 0xe3069283u);
}

TEST(Crc32cTest, MaskRoundTrips) {
  const std::string bytes = "some frame bytes";
  uint32_t crc = Crc32c(bytes.data(), bytes.size());
  EXPECT_NE(MaskCrc(crc), crc);
  EXPECT_EQ(UnmaskCrc(MaskCrc(crc)), crc);
}

TEST(WalTest, RoundTrip) {
  MemEnv env;
  WriteLog(&env, "wal", 5);
  WalScanResult scan;
  ASSERT_TRUE(ScanWal(&env, "wal", &scan).ok());
  ASSERT_EQ(scan.frames.size(), 5u);
  EXPECT_EQ(scan.dropped_bytes, 0u);
  for (int i = 0; i < 5; ++i) {
    EXPECT_EQ(scan.frames[i].seq, static_cast<uint64_t>(i + 1));
    EXPECT_EQ(scan.frames[i].payload, Payload(i));
  }
}

TEST(WalTest, MissingFileIsNotFound) {
  MemEnv env;
  WalScanResult scan;
  EXPECT_TRUE(ScanWal(&env, "nope", &scan).IsNotFound());
}

TEST(WalTest, ShortHeaderIsEmptyLog) {
  // A crash can hit between creating the file and syncing the 8-byte
  // header; nothing was acked, so this is an empty log, not corruption.
  MemEnv env;
  WriteLog(&env, "wal", 3);
  ASSERT_TRUE(env.TruncateFile("wal", 5).ok());
  WalScanResult scan;
  ASSERT_TRUE(ScanWal(&env, "wal", &scan).ok());
  EXPECT_TRUE(scan.frames.empty());
}

TEST(WalTest, ForeignMagicIsCorruption) {
  MemEnv env;
  WriteLog(&env, "wal", 1);
  ASSERT_TRUE(env.CorruptByte("wal", 0, 0xFF).ok());
  WalScanResult scan;
  EXPECT_TRUE(ScanWal(&env, "wal", &scan).IsCorruption());
}

TEST(WalTest, TruncationKeepsPrefix) {
  MemEnv env;
  const uint64_t full = WriteLog(&env, "wal", 4);
  // Cut at every byte boundary: the scan must recover a frame-prefix (0..4
  // whole frames) and report the cut bytes as dropped — never a torn frame.
  for (uint64_t keep = kWalHeaderSize; keep < full; ++keep) {
    MemEnv env2;
    WriteLog(&env2, "wal", 4);
    ASSERT_TRUE(env2.TruncateFile("wal", keep).ok());
    WalScanResult scan;
    ASSERT_TRUE(ScanWal(&env2, "wal", &scan).ok()) << "keep=" << keep;
    ASSERT_LE(scan.frames.size(), 4u);
    for (size_t i = 0; i < scan.frames.size(); ++i) {
      EXPECT_EQ(scan.frames[i].payload, Payload(static_cast<int>(i)));
    }
    EXPECT_EQ(scan.valid_bytes + scan.dropped_bytes, keep);
  }
}

TEST(WalTest, BitFlipEndsScanBeforeTheFlippedFrame) {
  const uint64_t full = WriteLog(&(*std::make_unique<MemEnv>()), "wal", 4);
  // Flip every byte position in turn; frames before the flipped one must
  // survive byte-identically, the flipped one and everything after drop.
  for (uint64_t off = kWalHeaderSize; off < full; ++off) {
    MemEnv env;
    WriteLog(&env, "wal", 4);
    ASSERT_TRUE(env.CorruptByte("wal", off, 0x40).ok());
    WalScanResult scan;
    Status s = ScanWal(&env, "wal", &scan);
    ASSERT_TRUE(s.ok()) << s.ToString();
    EXPECT_LT(scan.frames.size(), 4u) << "off=" << off;
    EXPECT_GT(scan.dropped_bytes, 0u);
    for (size_t i = 0; i < scan.frames.size(); ++i) {
      EXPECT_EQ(scan.frames[i].seq, i + 1);
      EXPECT_EQ(scan.frames[i].payload, Payload(static_cast<int>(i)));
    }
  }
}

TEST(WalTest, UnsyncedTailVanishesAtCrash) {
  MemEnv env;
  std::unique_ptr<WalWriter> writer;
  ASSERT_TRUE(WalWriter::Create(&env, "wal", &writer).ok());
  ASSERT_TRUE(writer->Append(1, "acked").ok());
  ASSERT_TRUE(writer->Sync().ok());
  ASSERT_TRUE(writer->Append(2, "never synced").ok());
  env.SimulateCrash();
  WalScanResult scan;
  ASSERT_TRUE(ScanWal(&env, "wal", &scan).ok());
  ASSERT_EQ(scan.frames.size(), 1u);
  EXPECT_EQ(scan.frames[0].payload, "acked");
}

TEST(WalTest, TornTailAtEveryWidthRecoversTheSyncedPrefix) {
  // A power cut can persist any prefix of the unsynced tail (torn write);
  // whatever the width, recovery lands on the synced frames.
  const std::string tail = "torn-me";
  for (uint64_t torn = 0; torn <= kWalFrameHeaderSize + tail.size(); ++torn) {
    MemEnv env;
    std::unique_ptr<WalWriter> writer;
    ASSERT_TRUE(WalWriter::Create(&env, "wal", &writer).ok());
    ASSERT_TRUE(writer->Append(1, "acked").ok());
    ASSERT_TRUE(writer->Sync().ok());
    ASSERT_TRUE(writer->Append(2, tail).ok());
    env.SimulateCrash(torn);
    WalScanResult scan;
    ASSERT_TRUE(ScanWal(&env, "wal", &scan).ok()) << "torn=" << torn;
    // The tail frame only survives if it tore *exactly* at its end.
    const size_t want =
        torn == kWalFrameHeaderSize + tail.size() ? 2u : 1u;
    ASSERT_EQ(scan.frames.size(), want) << "torn=" << torn;
    EXPECT_EQ(scan.frames[0].payload, "acked");
  }
}

TEST(WalTest, RewriteTruncatedDropsTheBadTailAtomically) {
  MemEnv env;
  const uint64_t full = WriteLog(&env, "wal", 3);
  ASSERT_TRUE(env.CorruptByte("wal", full - 2, 0x01).ok());
  WalScanResult scan;
  ASSERT_TRUE(ScanWal(&env, "wal", &scan).ok());
  ASSERT_EQ(scan.frames.size(), 2u);
  ASSERT_TRUE(RewriteTruncated(&env, "wal", scan).ok());
  uint64_t size = 0;
  ASSERT_TRUE(env.GetFileSize("wal", &size).ok());
  EXPECT_EQ(size, scan.valid_bytes);
  // The rewritten log scans clean and appends keep working.
  WalScanResult rescan;
  ASSERT_TRUE(ScanWal(&env, "wal", &rescan).ok());
  EXPECT_EQ(rescan.frames.size(), 2u);
  EXPECT_EQ(rescan.dropped_bytes, 0u);
  std::unique_ptr<WalWriter> writer;
  ASSERT_TRUE(WalWriter::OpenForAppend(&env, "wal", &writer).ok());
  ASSERT_TRUE(writer->Append(3, "fresh").ok());
  ASSERT_TRUE(writer->Sync().ok());
  ASSERT_TRUE(ScanWal(&env, "wal", &rescan).ok());
  ASSERT_EQ(rescan.frames.size(), 3u);
  EXPECT_EQ(rescan.frames[2].payload, "fresh");
}

TEST(WalTest, OversizedLengthFieldIsABadFrameNotAnAllocation) {
  MemEnv env;
  WriteLog(&env, "wal", 2);
  // Flip the high byte of frame 1's payload length: the length now demands
  // gigabytes; the scan must stop there, not allocate.
  ASSERT_TRUE(env.CorruptByte("wal", kWalHeaderSize + 7, 0xFF).ok());
  WalScanResult scan;
  ASSERT_TRUE(ScanWal(&env, "wal", &scan).ok());
  EXPECT_EQ(scan.frames.size(), 0u);
  EXPECT_GT(scan.dropped_bytes, 0u);
}

std::vector<SnapshotSection> TestSections() {
  return {{"meta", std::string("\x01\x02\x03", 3)},
          {"docs", std::string(1000, 'd')},
          {"empty", ""}};
}

TEST(SnapshotTest, RoundTrip) {
  MemEnv env;
  ASSERT_TRUE(WriteSnapshotFile(&env, "snap", TestSections()).ok());
  std::vector<SnapshotSection> sections;
  ASSERT_TRUE(ReadSnapshotFile(&env, "snap", &sections).ok());
  ASSERT_EQ(sections.size(), 3u);
  EXPECT_EQ(FindSection(sections, "docs")->data, std::string(1000, 'd'));
  EXPECT_EQ(FindSection(sections, "empty")->data, "");
  EXPECT_EQ(FindSection(sections, "absent"), nullptr);
}

TEST(SnapshotTest, MissingFileIsNotFound) {
  MemEnv env;
  std::vector<SnapshotSection> sections;
  EXPECT_TRUE(ReadSnapshotFile(&env, "snap", &sections).IsNotFound());
}

TEST(SnapshotTest, EveryBitFlipIsLoud) {
  MemEnv env;
  ASSERT_TRUE(WriteSnapshotFile(&env, "snap", TestSections()).ok());
  uint64_t size = 0;
  ASSERT_TRUE(env.GetFileSize("snap", &size).ok());
  // Flip one byte at a stride across the whole file (body, footer, trailer):
  // a snapshot is verified whole or refused — no flip may read back clean.
  for (uint64_t off = 0; off < size; off += 7) {
    MemEnv env2;
    ASSERT_TRUE(WriteSnapshotFile(&env2, "snap", TestSections()).ok());
    ASSERT_TRUE(env2.CorruptByte("snap", off, 0x10).ok());
    std::vector<SnapshotSection> sections;
    EXPECT_TRUE(ReadSnapshotFile(&env2, "snap", &sections).IsCorruption())
        << "off=" << off;
  }
}

TEST(SnapshotTest, EveryTruncationIsLoud) {
  MemEnv env;
  ASSERT_TRUE(WriteSnapshotFile(&env, "snap", TestSections()).ok());
  uint64_t size = 0;
  ASSERT_TRUE(env.GetFileSize("snap", &size).ok());
  for (uint64_t keep = 0; keep < size; keep += 11) {
    MemEnv env2;
    ASSERT_TRUE(WriteSnapshotFile(&env2, "snap", TestSections()).ok());
    ASSERT_TRUE(env2.TruncateFile("snap", keep).ok());
    std::vector<SnapshotSection> sections;
    EXPECT_TRUE(ReadSnapshotFile(&env2, "snap", &sections).IsCorruption())
        << "keep=" << keep;
  }
}

TEST(SnapshotTest, CrashBeforeRenameKeepsTheOldSnapshot) {
  MemEnv env;
  ASSERT_TRUE(WriteSnapshotFile(&env, "snap", {{"v", "one"}}).ok());
  // Stage a replacement but crash with it still at the temp name.
  std::unique_ptr<WritableFile> tmp;
  ASSERT_TRUE(env.NewWritableFile("snap.tmp", &tmp).ok());
  ASSERT_TRUE(tmp->Append("half-written garbage").ok());
  env.SimulateCrash();
  std::vector<SnapshotSection> sections;
  ASSERT_TRUE(ReadSnapshotFile(&env, "snap", &sections).ok());
  ASSERT_EQ(sections.size(), 1u);
  EXPECT_EQ(sections[0].data, "one");
}

TEST(FaultTest, ShortReadIsLoudNotWrong) {
  MemEnv mem;
  ASSERT_TRUE(WriteSnapshotFile(&mem, "snap", TestSections()).ok());
  FaultEnv env(&mem);
  // ReadSnapshotFile slurps the file in one Read; starve it at several
  // widths — the whole-file verification must refuse every time.
  for (uint64_t max_bytes : {0, 3, 64, 500}) {
    env.ShortReadAt(1, max_bytes);
    std::vector<SnapshotSection> sections;
    EXPECT_TRUE(ReadSnapshotFile(&env, "snap", &sections).IsCorruption())
        << "max_bytes=" << max_bytes;
    env.ClearFaults();
  }
}

TEST(FaultTest, FailedSyncSurfacesIoError) {
  MemEnv mem;
  FaultEnv env(&mem);
  std::unique_ptr<WalWriter> writer;
  ASSERT_TRUE(WalWriter::Create(&env, "wal", &writer).ok());
  ASSERT_TRUE(writer->Append(1, "a").ok());
  env.FailSyncsAfter(0);
  EXPECT_TRUE(writer->Sync().IsIoError());
}

TEST(FaultTest, FailedAppendSurfacesIoError) {
  MemEnv mem;
  FaultEnv env(&mem);
  std::unique_ptr<WalWriter> writer;
  ASSERT_TRUE(WalWriter::Create(&env, "wal", &writer).ok());
  env.FailAppendsAfter(0);
  EXPECT_TRUE(writer->Append(1, "a").IsIoError());
}

}  // namespace
}  // namespace persist
}  // namespace dyndex
