#include "util/fenwick.h"

#include <gtest/gtest.h>

#include <vector>

#include "util/rng.h"

namespace dyndex {
namespace {

TEST(FenwickTest, PrefixSumsMatchNaive) {
  uint64_t n = 300;
  Fenwick f(n);
  std::vector<int64_t> naive(n, 0);
  Rng rng(7);
  for (int step = 0; step < 2000; ++step) {
    uint64_t i = rng.Below(n);
    int64_t d = static_cast<int64_t>(rng.Below(10)) - 4;
    f.Add(i, d);
    naive[i] += d;
    uint64_t q = rng.Below(n + 1);
    int64_t expect = 0;
    for (uint64_t j = 0; j < q; ++j) expect += naive[j];
    ASSERT_EQ(f.PrefixSum(q), expect);
  }
}

TEST(FenwickTest, RangeSum) {
  Fenwick f(10);
  for (uint64_t i = 0; i < 10; ++i) f.Add(i, static_cast<int64_t>(i));
  EXPECT_EQ(f.RangeSum(0, 10), 45);
  EXPECT_EQ(f.RangeSum(3, 7), 3 + 4 + 5 + 6);
  EXPECT_EQ(f.RangeSum(5, 5), 0);
}

TEST(FenwickTest, FindByPrefix) {
  Fenwick f(8);
  // counts: 2 0 3 1 0 0 5 1  cumulative: 2 2 5 6 6 6 11 12
  int64_t counts[] = {2, 0, 3, 1, 0, 0, 5, 1};
  for (uint64_t i = 0; i < 8; ++i) f.Add(i, counts[i]);
  EXPECT_EQ(f.FindByPrefix(0), 0u);   // first item in slot 0
  EXPECT_EQ(f.FindByPrefix(1), 0u);
  EXPECT_EQ(f.FindByPrefix(2), 2u);   // third item in slot 2
  EXPECT_EQ(f.FindByPrefix(4), 2u);
  EXPECT_EQ(f.FindByPrefix(5), 3u);
  EXPECT_EQ(f.FindByPrefix(6), 6u);
  EXPECT_EQ(f.FindByPrefix(11), 7u);
  EXPECT_EQ(f.FindByPrefix(12), 8u);  // past the end
}

TEST(FenwickTest, EmptyAndReset) {
  Fenwick f;
  EXPECT_EQ(f.size(), 0u);
  f.Reset(5);
  EXPECT_EQ(f.PrefixSum(5), 0);
  f.Add(4, 9);
  EXPECT_EQ(f.PrefixSum(5), 9);
  f.Reset(5);
  EXPECT_EQ(f.PrefixSum(5), 0);
}

}  // namespace
}  // namespace dyndex
