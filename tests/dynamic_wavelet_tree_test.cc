#include "seq/dynamic_wavelet_tree.h"

#include <gtest/gtest.h>

#include <vector>

#include "util/rng.h"

namespace dyndex {
namespace {

void CheckModel(const DynamicWaveletTree& wt, const std::vector<uint32_t>& m,
                uint32_t sigma) {
  ASSERT_EQ(wt.size(), m.size());
  std::vector<uint64_t> counts(sigma, 0);
  std::vector<uint64_t> seen(sigma, 0);
  for (uint64_t i = 0; i < m.size(); ++i) {
    ASSERT_EQ(wt.Access(i), m[i]) << i;
    auto [c, r] = wt.InverseSelect(i);
    ASSERT_EQ(c, m[i]);
    ASSERT_EQ(r, counts[m[i]]);
    ASSERT_EQ(wt.Select(m[i], seen[m[i]]), i);
    ++counts[m[i]];
    ++seen[m[i]];
  }
  for (uint32_t c = 0; c < sigma; ++c) {
    ASSERT_EQ(wt.Count(c), counts[c]) << "c=" << c;
  }
}

class DynamicWaveletTreeTest : public ::testing::TestWithParam<uint32_t> {};

TEST_P(DynamicWaveletTreeTest, RandomChurnMatchesModel) {
  uint32_t sigma = GetParam();
  DynamicWaveletTree wt(sigma);
  std::vector<uint32_t> model;
  Rng rng(sigma);
  for (int step = 0; step < 3000; ++step) {
    if (rng.Below(3) != 0 || model.empty()) {
      uint64_t pos = rng.Below(model.size() + 1);
      uint32_t c = static_cast<uint32_t>(rng.Below(sigma));
      wt.Insert(pos, c);
      model.insert(model.begin() + static_cast<int64_t>(pos), c);
    } else {
      uint64_t pos = rng.Below(model.size());
      uint32_t erased = wt.Erase(pos);
      ASSERT_EQ(erased, model[pos]);
      model.erase(model.begin() + static_cast<int64_t>(pos));
    }
    if (step % 500 == 499) CheckModel(wt, model, sigma);
  }
  CheckModel(wt, model, sigma);
}

INSTANTIATE_TEST_SUITE_P(Alphabets, DynamicWaveletTreeTest,
                         ::testing::Values(2u, 3u, 8u, 100u, 1000u));

TEST(DynamicWaveletTreeBasic, RankAtEveryPrefix) {
  DynamicWaveletTree wt(4);
  std::vector<uint32_t> data{0, 1, 2, 3, 2, 1, 0, 2};
  for (uint32_t i = 0; i < data.size(); ++i) wt.Insert(i, data[i]);
  uint64_t c2 = 0;
  for (uint64_t i = 0; i <= data.size(); ++i) {
    ASSERT_EQ(wt.Rank(2, i), c2);
    if (i < data.size() && data[i] == 2) ++c2;
  }
}

TEST(DynamicWaveletTreeBasic, EmptyTree) {
  DynamicWaveletTree wt(16);
  EXPECT_EQ(wt.size(), 0u);
  EXPECT_EQ(wt.Rank(3, 0), 0u);
  EXPECT_EQ(wt.Count(3), 0u);
}

TEST(DynamicWaveletTreeBasic, CapacityOne) {
  DynamicWaveletTree wt(1);
  wt.Insert(0, 0);
  wt.Insert(1, 0);
  EXPECT_EQ(wt.Access(1), 0u);
  EXPECT_EQ(wt.Count(0), 2u);
}

TEST(DynamicWaveletTreeBulk, BulkConstructorMatchesModel) {
  for (uint32_t sigma : {1u, 2u, 5u, 16u, 64u, 200u}) {
    Rng rng(sigma * 13 + 1);
    std::vector<uint32_t> data(3000);
    for (auto& c : data) c = static_cast<uint32_t>(rng.Below(sigma));
    DynamicWaveletTree wt(sigma, data);
    CheckModel(wt, data, sigma);
  }
}

TEST(DynamicWaveletTreeBulk, BulkConstructorThenChurn) {
  uint32_t sigma = 20;
  Rng rng(99);
  std::vector<uint32_t> model(2000);
  for (auto& c : model) c = static_cast<uint32_t>(rng.Below(sigma));
  DynamicWaveletTree wt(sigma, model);
  for (int step = 0; step < 1500; ++step) {
    if (rng.Below(2) == 0 || model.empty()) {
      uint64_t pos = rng.Below(model.size() + 1);
      uint32_t c = static_cast<uint32_t>(rng.Below(sigma));
      wt.Insert(pos, c);
      model.insert(model.begin() + static_cast<int64_t>(pos), c);
    } else {
      uint64_t pos = rng.Below(model.size());
      ASSERT_EQ(wt.Erase(pos), model[pos]);
      model.erase(model.begin() + static_cast<int64_t>(pos));
    }
  }
  CheckModel(wt, model, sigma);
}

TEST(DynamicWaveletTreeBulk, InsertBatchMatchesPointInserts) {
  for (uint32_t sigma : {2u, 7u, 64u}) {
    Rng rng(sigma * 31 + 5);
    DynamicWaveletTree wt(sigma);
    std::vector<uint32_t> model;
    for (int step = 0; step < 60; ++step) {
      uint64_t len = rng.Below(400) + 1;
      std::vector<uint32_t> batch(len);
      bool constant = rng.Chance(0.25);  // sigma=1-style run
      uint32_t fill = static_cast<uint32_t>(rng.Below(sigma));
      for (auto& c : batch) {
        c = constant ? fill : static_cast<uint32_t>(rng.Below(sigma));
      }
      uint64_t pos = rng.Below(model.size() + 1);
      wt.InsertBatch(pos, batch.data(), batch.size());
      model.insert(model.begin() + static_cast<int64_t>(pos), batch.begin(),
                   batch.end());
      if (step % 20 == 19) CheckModel(wt, model, sigma);
    }
    CheckModel(wt, model, sigma);
  }
}

TEST(DynamicWaveletTreeBulk, RankPairMatchesRank) {
  uint32_t sigma = 48;
  Rng rng(7);
  std::vector<uint32_t> data(5000);
  for (auto& c : data) c = static_cast<uint32_t>(rng.Below(sigma));
  DynamicWaveletTree wt(sigma, data);
  for (int probe = 0; probe < 2000; ++probe) {
    uint32_t c = static_cast<uint32_t>(rng.Below(sigma));
    uint64_t i = rng.Below(data.size() + 1);
    uint64_t j = i + rng.Below(data.size() + 1 - i);
    auto [ri, rj] = wt.RankPair(c, i, j);
    ASSERT_EQ(ri, wt.Rank(c, i)) << "c=" << c << " i=" << i;
    ASSERT_EQ(rj, wt.Rank(c, j)) << "c=" << c << " j=" << j;
  }
}

}  // namespace
}  // namespace dyndex
