#include "baseline/dynamic_fm_index.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <vector>

#include "gen/text_gen.h"
#include "util/rng.h"

namespace dyndex {
namespace {

std::vector<Occurrence> NaiveFind(
    const std::map<DocId, std::vector<Symbol>>& model,
    const std::vector<Symbol>& p) {
  std::vector<Occurrence> out;
  for (const auto& [id, doc] : model) {
    if (doc.size() < p.size()) continue;
    for (uint64_t i = 0; i + p.size() <= doc.size(); ++i) {
      if (std::equal(p.begin(), p.end(),
                     doc.begin() + static_cast<int64_t>(i))) {
        out.push_back({id, i});
      }
    }
  }
  return out;
}

TEST(DynamicFmIndexTest, InsertThenCountSimple) {
  DynamicFmIndex idx;
  idx.Insert({2, 3, 2, 3, 4});
  EXPECT_EQ(idx.Count({2, 3}), 2u);
  EXPECT_EQ(idx.Count({3, 2}), 1u);
  EXPECT_EQ(idx.Count({4}), 1u);
  EXPECT_EQ(idx.Count({5}), 0u);
  EXPECT_EQ(idx.Count({2, 3, 4}), 1u);
}

TEST(DynamicFmIndexTest, MultiDocCountsAndLocate) {
  DynamicFmIndex idx;
  std::map<DocId, std::vector<Symbol>> model;
  std::vector<std::vector<Symbol>> docs{
      {2, 3, 4, 2, 3}, {3, 4, 3, 4}, {2, 2, 2}, {4, 3, 2}};
  for (const auto& d : docs) model[idx.Insert(d)] = d;
  for (const std::vector<Symbol>& p :
       {std::vector<Symbol>{2}, {3, 4}, {2, 3}, {4, 3}, {2, 2}}) {
    auto got = idx.Find(p);
    std::sort(got.begin(), got.end());
    ASSERT_EQ(got, NaiveFind(model, p)) << "pattern size " << p.size();
    ASSERT_EQ(idx.Count(p), NaiveFind(model, p).size());
  }
}

TEST(DynamicFmIndexTest, EraseRestoresExactState) {
  DynamicFmIndex idx;
  auto a = std::vector<Symbol>{2, 3, 4};
  auto b = std::vector<Symbol>{3, 3, 3};
  DocId ia = idx.Insert(a);
  uint64_t size_after_a = idx.size();
  DocId ib = idx.Insert(b);
  idx.Erase(ib);
  EXPECT_EQ(idx.size(), size_after_a);
  EXPECT_EQ(idx.Count({3, 3}), 0u);
  EXPECT_EQ(idx.Count({2, 3}), 1u);
  idx.Erase(ia);
  EXPECT_EQ(idx.size(), 0u);
  EXPECT_EQ(idx.num_docs(), 0u);
}

class DynamicFmChurnTest : public ::testing::TestWithParam<uint32_t> {};

TEST_P(DynamicFmChurnTest, RandomChurnMatchesNaive) {
  uint32_t sample_rate = GetParam();
  DynamicFmIndex::Options opt;
  opt.sample_rate = sample_rate;
  opt.max_docs = 256;
  DynamicFmIndex idx(opt);
  std::map<DocId, std::vector<Symbol>> model;
  Rng rng(3000 + sample_rate);
  for (int step = 0; step < 300; ++step) {
    uint64_t op = rng.Below(10);
    if (op < 5 || model.empty()) {
      auto doc = UniformText(rng, rng.Range(1, 60), 4);
      model[idx.Insert(doc)] = doc;
    } else if (op < 7) {
      auto it = model.begin();
      std::advance(it, static_cast<int64_t>(rng.Below(model.size())));
      ASSERT_TRUE(idx.Erase(it->first));
      model.erase(it);
    } else {
      std::vector<std::vector<Symbol>> live;
      for (const auto& [id, d] : model) live.push_back(d);
      auto p = SamplePattern(rng, live, rng.Range(1, 5), 4);
      auto got = idx.Find(p);
      std::sort(got.begin(), got.end());
      ASSERT_EQ(got, NaiveFind(model, p)) << "step " << step;
      ASSERT_EQ(idx.Count(p), NaiveFind(model, p).size());
    }
  }
  uint64_t total = 0;
  for (const auto& [id, d] : model) total += d.size();
  EXPECT_EQ(idx.live_symbols(), total);
  EXPECT_EQ(idx.size(), total + model.size());  // one separator per doc
}

INSTANTIATE_TEST_SUITE_P(SampleRates, DynamicFmChurnTest,
                         ::testing::Values(1u, 4u, 32u));

TEST(DynamicFmIndexTest, SeparatorPoolIsReused) {
  DynamicFmIndex::Options opt;
  opt.max_docs = 4;
  DynamicFmIndex idx(opt);
  // Insert/erase more total docs than the pool size.
  for (int round = 0; round < 10; ++round) {
    std::vector<DocId> ids;
    for (int i = 0; i < 4; ++i) ids.push_back(idx.Insert({2, 3, 4}));
    EXPECT_EQ(idx.Count({2, 3}), 4u);
    for (DocId id : ids) idx.Erase(id);
    EXPECT_EQ(idx.size(), 0u);
  }
}

TEST(DynamicFmIndexTest, SingleSymbolDocsAndOverlaps) {
  DynamicFmIndex idx;
  std::map<DocId, std::vector<Symbol>> model;
  for (int i = 0; i < 20; ++i) {
    std::vector<Symbol> d{2};
    model[idx.Insert(d)] = d;
  }
  EXPECT_EQ(idx.Count({2}), 20u);
  auto rep = std::vector<Symbol>(50, 2);
  model[idx.Insert(rep)] = rep;
  EXPECT_EQ(idx.Count({2, 2, 2}), 48u);
  auto got = idx.Find({2, 2});
  std::sort(got.begin(), got.end());
  ASSERT_EQ(got, NaiveFind(model, {2, 2}));
}

TEST(DynamicFmIndexTest, LargeAlphabet) {
  DynamicFmIndex::Options opt;
  opt.max_symbol = 70000;
  DynamicFmIndex idx(opt);
  std::map<DocId, std::vector<Symbol>> model;
  Rng rng(17);
  for (int i = 0; i < 10; ++i) {
    auto d = UniformText(rng, 40, 60000);
    model[idx.Insert(d)] = d;
  }
  for (int q = 0; q < 20; ++q) {
    std::vector<std::vector<Symbol>> live;
    for (const auto& [id, d] : model) live.push_back(d);
    auto p = SamplePattern(rng, live, 2, 60000);
    auto got = idx.Find(p);
    std::sort(got.begin(), got.end());
    ASSERT_EQ(got, NaiveFind(model, p));
  }
}

// The bulk SA-IS load must produce a structure indistinguishable from
// incremental insertion: same handles, same query answers, same extraction,
// and the same behavior under subsequent incremental churn.
TEST(DynamicFmIndexBulkTest, BulkLoadMatchesIncremental) {
  Rng rng(23);
  for (int round = 0; round < 4; ++round) {
    std::vector<std::vector<Symbol>> docs;
    uint32_t sigma = round % 2 == 0 ? 4 : 30;
    for (int d = 0; d < 12; ++d) {
      docs.push_back(UniformText(rng, rng.Below(60) + 1, sigma));
    }
    // Adversarial shapes: length-1 doc and an all-equal (sigma=1-style) run.
    docs.push_back({2});
    docs.push_back(std::vector<Symbol>(40, 2));

    DynamicFmIndex inc;
    DynamicFmIndex bulk;
    std::vector<DocId> inc_ids;
    for (const auto& d : docs) inc_ids.push_back(inc.Insert(d));
    std::vector<DocId> bulk_ids = bulk.InsertBulk(docs);
    ASSERT_EQ(inc_ids, bulk_ids);
    ASSERT_EQ(inc.size(), bulk.size());
    ASSERT_EQ(inc.num_docs(), bulk.num_docs());

    std::vector<std::vector<Symbol>> flat = docs;
    for (int q = 0; q < 30; ++q) {
      auto p = SamplePattern(rng, flat, rng.Below(4) + 1, sigma);
      ASSERT_EQ(bulk.Count(p), inc.Count(p)) << "round " << round;
      auto got_b = bulk.Find(p);
      auto got_i = inc.Find(p);
      std::sort(got_b.begin(), got_b.end());
      std::sort(got_i.begin(), got_i.end());
      ASSERT_EQ(got_b, got_i) << "round " << round;
    }
    for (uint64_t d = 0; d < docs.size(); ++d) {
      ASSERT_EQ(bulk.DocLenOf(bulk_ids[d]), docs[d].size());
      ASSERT_EQ(bulk.Extract(bulk_ids[d], 0, docs[d].size()), docs[d]);
    }
  }
}

TEST(DynamicFmIndexBulkTest, BulkThenIncrementalChurn) {
  Rng rng(31);
  std::vector<std::vector<Symbol>> docs;
  for (int d = 0; d < 10; ++d) {
    docs.push_back(UniformText(rng, rng.Below(50) + 1, 6));
  }
  DynamicFmIndex idx;
  std::map<DocId, std::vector<Symbol>> model;
  std::vector<DocId> ids = idx.InsertBulk(docs);
  for (uint64_t d = 0; d < docs.size(); ++d) model[ids[d]] = docs[d];
  // Erase half the bulk docs, insert fresh ones incrementally, re-check.
  for (uint64_t d = 0; d < docs.size(); d += 2) {
    ASSERT_TRUE(idx.Erase(ids[d]));
    model.erase(ids[d]);
  }
  for (int d = 0; d < 6; ++d) {
    auto doc = UniformText(rng, rng.Below(40) + 1, 6);
    model[idx.Insert(doc)] = doc;
  }
  for (int q = 0; q < 25; ++q) {
    std::vector<std::vector<Symbol>> live;
    for (const auto& [id, doc] : model) live.push_back(doc);
    auto p = SamplePattern(rng, live, rng.Below(3) + 1, 6);
    auto got = idx.Find(p);
    std::sort(got.begin(), got.end());
    ASSERT_EQ(got, NaiveFind(model, p)) << "q=" << q;
    ASSERT_EQ(idx.Count(p), NaiveFind(model, p).size());
  }
}

TEST(DynamicFmIndexBulkTest, BulkLoadEmptyAndSingle) {
  DynamicFmIndex idx;
  EXPECT_TRUE(idx.InsertBulk({}).empty());
  EXPECT_EQ(idx.size(), 0u);
  DynamicFmIndex one;
  auto ids = one.InsertBulk({{2, 3, 2}});
  ASSERT_EQ(ids.size(), 1u);
  EXPECT_EQ(one.Count({2}), 2u);
  EXPECT_EQ(one.Extract(ids[0], 0, 3), (std::vector<Symbol>{2, 3, 2}));
}

}  // namespace
}  // namespace dyndex
