// Tests for static / deletion-only relations against naive pair-set models.
#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <vector>

#include "gen/relation_gen.h"
#include "relation/deletion_only_relation.h"
#include "relation/static_relation.h"
#include "util/rng.h"

namespace dyndex {
namespace {

using PairSet = std::set<std::pair<uint32_t, uint32_t>>;

std::vector<Pair> ToPairs(const PairSet& s) {
  std::vector<Pair> out;
  for (auto [o, a] : s) out.push_back({o, a});
  return out;
}

TEST(StaticRelationTest, ObjectRangesAndLookups) {
  // objects: 0 -> {1, 3}, 1 -> {}, 2 -> {0, 1, 2}
  std::vector<Pair> pairs{{0, 1}, {0, 3}, {2, 0}, {2, 1}, {2, 2}};
  StaticRelation rel(pairs, 3, 4);
  EXPECT_EQ(rel.num_pairs(), 5u);
  auto [l0, r0] = rel.ObjectRange(0);
  EXPECT_EQ(r0 - l0, 2u);
  auto [l1, r1] = rel.ObjectRange(1);
  EXPECT_EQ(r1 - l1, 0u);
  auto [l2, r2] = rel.ObjectRange(2);
  EXPECT_EQ(r2 - l2, 3u);
  EXPECT_EQ(rel.LabelAt(l0), 1u);
  EXPECT_EQ(rel.LabelAt(l0 + 1), 3u);
  EXPECT_EQ(rel.ObjectAt(l2), 2u);
  EXPECT_NE(rel.FindPair(0, 3), StaticRelation::kNotFound);
  EXPECT_EQ(rel.FindPair(0, 2), StaticRelation::kNotFound);
  EXPECT_EQ(rel.FindPair(1, 1), StaticRelation::kNotFound);
  EXPECT_EQ(rel.LabelCount(1), 2u);
}

class StaticRelationRandomTest
    : public ::testing::TestWithParam<std::tuple<int, int, int>> {};

TEST_P(StaticRelationRandomTest, MatchesNaiveSets) {
  auto [n_pairs, t, sl] = GetParam();
  Rng rng(n_pairs * 31 + t + sl);
  auto raw = GenPairs(rng, n_pairs, t, sl);
  PairSet model(raw.begin(), raw.end());
  StaticRelation rel(ToPairs(model), t, sl);
  // Per-object label sets.
  for (uint32_t o = 0; o < static_cast<uint32_t>(t); ++o) {
    auto [l, r] = rel.ObjectRange(o);
    std::set<uint32_t> got;
    for (uint64_t p = l; p < r; ++p) got.insert(rel.LabelAt(p));
    std::set<uint32_t> expect;
    for (auto [oo, aa] : model) {
      if (oo == o) expect.insert(aa);
    }
    ASSERT_EQ(got, expect) << "object " << o;
  }
  // Per-label object sets via select.
  for (uint32_t a = 0; a < static_cast<uint32_t>(sl); ++a) {
    std::set<uint32_t> got;
    for (uint64_t k = 0; k < rel.LabelCount(a); ++k) {
      got.insert(rel.ObjectAt(rel.SelectLabel(a, k)));
    }
    std::set<uint32_t> expect;
    for (auto [oo, aa] : model) {
      if (aa == a) expect.insert(oo);
    }
    ASSERT_EQ(got, expect) << "label " << a;
  }
}

INSTANTIATE_TEST_SUITE_P(Sweep, StaticRelationRandomTest,
                         ::testing::Values(std::tuple{50, 10, 8},
                                           std::tuple{500, 40, 30},
                                           std::tuple{400, 100, 5},
                                           std::tuple{400, 5, 100}));

TEST(DeletionOnlyRelationTest, DeleteAndQuery) {
  Rng rng(9);
  auto raw = GenPairs(rng, 800, 50, 40);
  PairSet model(raw.begin(), raw.end());
  DeletionOnlyRelation rel(ToPairs(model), 50, 40);
  // Delete a third of the pairs.
  std::vector<std::pair<uint32_t, uint32_t>> all(model.begin(), model.end());
  for (size_t i = 0; i < all.size(); i += 3) {
    ASSERT_TRUE(rel.DeletePair(all[i].first, all[i].second));
    ASSERT_FALSE(rel.DeletePair(all[i].first, all[i].second));  // double
    model.erase(all[i]);
  }
  EXPECT_EQ(rel.live_pairs(), model.size());
  for (uint32_t o = 0; o < 50; ++o) {
    std::set<uint32_t> got;
    rel.ForEachLabelOfObject(o, [&](uint32_t a) { got.insert(a); });
    std::set<uint32_t> expect;
    for (auto [oo, aa] : model) {
      if (oo == o) expect.insert(aa);
    }
    ASSERT_EQ(got, expect) << "object " << o;
    ASSERT_EQ(rel.CountLabelsOf(o), expect.size());
  }
  for (uint32_t a = 0; a < 40; ++a) {
    std::set<uint32_t> got;
    rel.ForEachObjectOfLabel(a, [&](uint32_t o) { got.insert(o); });
    std::set<uint32_t> expect;
    for (auto [oo, aa] : model) {
      if (aa == a) expect.insert(oo);
    }
    ASSERT_EQ(got, expect) << "label " << a;
    ASSERT_EQ(rel.CountObjectsOf(a), expect.size());
  }
}

TEST(DeletionOnlyRelationTest, RelatedReflectsLiveness) {
  std::vector<Pair> pairs{{0, 0}, {0, 1}, {1, 0}};
  DeletionOnlyRelation rel(pairs, 2, 2);
  EXPECT_TRUE(rel.Related(0, 0));
  EXPECT_TRUE(rel.DeletePair(0, 0));
  EXPECT_FALSE(rel.Related(0, 0));
  EXPECT_TRUE(rel.Related(0, 1));
  EXPECT_TRUE(rel.Related(1, 0));
  EXPECT_FALSE(rel.Related(1, 1));
}

TEST(DeletionOnlyRelationTest, PurgeThresholdAndExport) {
  Rng rng(10);
  auto raw = GenPairs(rng, 100, 20, 20);
  PairSet model(raw.begin(), raw.end());
  DeletionOnlyRelation rel(ToPairs(model), 20, 20);
  EXPECT_FALSE(rel.NeedsPurge(4));
  std::vector<std::pair<uint32_t, uint32_t>> all(model.begin(), model.end());
  for (int i = 0; i < 30; ++i) {
    rel.DeletePair(all[i].first, all[i].second);
    model.erase(all[i]);
  }
  EXPECT_TRUE(rel.NeedsPurge(4));
  std::vector<Pair> live;
  rel.ExportLivePairs(&live);
  PairSet exported;
  for (const Pair& p : live) exported.insert({p.object, p.label});
  EXPECT_EQ(exported, model);
}

}  // namespace
}  // namespace dyndex
