#include "suffix/entropy.h"

#include <gtest/gtest.h>

#include <cmath>

#include "gen/text_gen.h"
#include "util/rng.h"

namespace dyndex {
namespace {

TEST(EntropyTest, UniformTextApproachesLogSigma) {
  Rng rng(1);
  auto t = UniformText(rng, 200000, 16);
  double h0 = EntropyH0(t);
  EXPECT_NEAR(h0, 4.0, 0.01);
}

TEST(EntropyTest, ConstantTextIsZero) {
  std::vector<Symbol> t(1000, 7);
  EXPECT_DOUBLE_EQ(EntropyH0(t), 0.0);
  EXPECT_DOUBLE_EQ(EntropyHk(t, 2), 0.0);
}

TEST(EntropyTest, TwoSymbolKnownValue) {
  // 1/4 vs 3/4 distribution: H = 0.25*2 + 0.75*log2(4/3).
  std::vector<Symbol> t;
  for (int i = 0; i < 1000; ++i) t.push_back(i % 4 == 0 ? 2 : 3);
  double expect = 0.25 * 2.0 + 0.75 * std::log2(4.0 / 3.0);
  EXPECT_NEAR(EntropyH0(t), expect, 1e-9);
}

TEST(EntropyTest, MarkovTextHasLowerH1) {
  Rng rng(3);
  auto t = MarkovText(rng, 100000, 64, /*branch=*/4);
  double h0 = EntropyH0(t);
  double h1 = EntropyHk(t, 1);
  // With 4 successors per state, H1 <= log2(4) = 2, while H0 ~ log2(64).
  EXPECT_GT(h0, 3.0);
  EXPECT_LE(h1, 2.1);
}

TEST(EntropyTest, HkDecreasesInK) {
  Rng rng(4);
  auto t = MarkovText(rng, 50000, 16, 3);
  double h0 = EntropyH0(t);
  double h1 = EntropyHk(t, 1);
  double h2 = EntropyHk(t, 2);
  EXPECT_GE(h0 + 1e-9, h1);
  EXPECT_GE(h1 + 1e-9, h2);
}

TEST(EntropyTest, ZipfSkewLowersEntropy) {
  Rng rng(5);
  auto uniform = UniformText(rng, 100000, 256);
  auto zipf = ZipfText(rng, 100000, 256, 1.2);
  EXPECT_LT(EntropyH0(zipf), EntropyH0(uniform) - 1.0);
}

TEST(EntropyTest, EmptyAndShortInputs) {
  EXPECT_DOUBLE_EQ(EntropyH0({}), 0.0);
  EXPECT_DOUBLE_EQ(EntropyHk({2, 3}, 5), 0.0);
}

}  // namespace
}  // namespace dyndex
