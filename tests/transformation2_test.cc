// Model tests of Transformation 2 (worst-case updates): synchronous mode is
// deterministic; threaded mode exercises real background builds with racing
// deletions replayed at swap time.
#include "core/transformation2.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <vector>

#include "gen/text_gen.h"
#include "text/fm_index.h"
#include "text/packed_sa_index.h"
#include "util/rng.h"

namespace dyndex {
namespace {

std::vector<Occurrence> NaiveFind(
    const std::map<DocId, std::vector<Symbol>>& model,
    const std::vector<Symbol>& p) {
  std::vector<Occurrence> out;
  for (const auto& [id, doc] : model) {
    if (doc.size() < p.size()) continue;
    for (uint64_t i = 0; i + p.size() <= doc.size(); ++i) {
      if (std::equal(p.begin(), p.end(),
                     doc.begin() + static_cast<int64_t>(i))) {
        out.push_back({id, i});
      }
    }
  }
  return out;
}

T2Options SmallT2(RebuildMode mode, bool counting = false) {
  T2Options opt;
  opt.min_c0 = 64;
  opt.tau = 4;
  opt.counting = counting;
  opt.mode = mode;
  return opt;
}

template <typename Coll>
void RunChurn(Coll& coll, uint64_t seed, int steps, uint32_t sigma,
              uint64_t max_doc_len, bool check_queries_every_step) {
  std::map<DocId, std::vector<Symbol>> model;
  Rng rng(seed);
  for (int step = 0; step < steps; ++step) {
    uint64_t op = rng.Below(10);
    if (op < 5 || model.empty()) {
      auto doc = UniformText(rng, rng.Range(1, max_doc_len), sigma);
      DocId id = coll.Insert(doc);
      model.emplace(id, std::move(doc));
    } else if (op < 7) {
      auto it = model.begin();
      std::advance(it, static_cast<int64_t>(rng.Below(model.size())));
      ASSERT_TRUE(coll.Erase(it->first));
      model.erase(it);
    } else if (op < 9 || check_queries_every_step) {
      std::vector<std::vector<Symbol>> live;
      for (const auto& [id, d] : model) live.push_back(d);
      auto p = SamplePattern(rng, live, rng.Range(1, 6), sigma);
      auto got = coll.Find(p);
      std::sort(got.begin(), got.end());
      ASSERT_EQ(got, NaiveFind(model, p)) << "step " << step;
      ASSERT_EQ(coll.Count(p), NaiveFind(model, p).size()) << "step " << step;
    } else if (!model.empty()) {
      auto it = model.begin();
      std::advance(it, static_cast<int64_t>(rng.Below(model.size())));
      const auto& doc = it->second;
      uint64_t from = rng.Below(doc.size());
      uint64_t len = rng.Below(doc.size() - from + 1);
      auto begin = doc.begin() + static_cast<int64_t>(from);
      std::vector<Symbol> expect(begin, begin + static_cast<int64_t>(len));
      ASSERT_EQ(coll.Extract(it->first, from, len), expect);
    }
    if (step % 100 == 99) coll.CheckInvariants();
  }
  coll.ForceAllPending();
  coll.CheckInvariants();
  ASSERT_EQ(coll.num_docs(), model.size());
  // Exhaustive final check.
  std::vector<std::vector<Symbol>> live;
  for (const auto& [id, d] : model) live.push_back(d);
  Rng qrng(seed + 1);
  for (int q = 0; q < 30 && !model.empty(); ++q) {
    auto p = SamplePattern(qrng, live, qrng.Range(1, 5), sigma);
    auto got = coll.Find(p);
    std::sort(got.begin(), got.end());
    ASSERT_EQ(got, NaiveFind(model, p));
  }
}

TEST(T2Sync, ChurnModelFm) {
  DynamicCollectionT2<FmIndex> coll(SmallT2(RebuildMode::kSynchronous));
  RunChurn(coll, 2001, 700, 4, 100, false);
}

TEST(T2Sync, ChurnModelFmCounting) {
  DynamicCollectionT2<FmIndex> coll(SmallT2(RebuildMode::kSynchronous, true));
  RunChurn(coll, 2002, 500, 6, 80, false);
}

TEST(T2Sync, ChurnModelPacked) {
  DynamicCollectionT2<PackedSaIndex> coll(SmallT2(RebuildMode::kSynchronous));
  RunChurn(coll, 2003, 600, 4, 100, false);
}

TEST(T2Threaded, ChurnModelFm) {
  DynamicCollectionT2<FmIndex> coll(SmallT2(RebuildMode::kThreaded));
  RunChurn(coll, 2004, 700, 4, 100, false);
}

TEST(T2Threaded, ChurnModelQueriesEveryStep) {
  // Query correctness must hold *while* background builds are in flight.
  DynamicCollectionT2<FmIndex> coll(SmallT2(RebuildMode::kThreaded));
  RunChurn(coll, 2005, 300, 4, 60, true);
}

TEST(T2Sync, OversizedDocBecomesTopCollection) {
  DynamicCollectionT2<FmIndex> coll(SmallT2(RebuildMode::kSynchronous));
  Rng rng(2006);
  // Prime the collection.
  std::map<DocId, std::vector<Symbol>> model;
  for (int i = 0; i < 50; ++i) {
    auto d = UniformText(rng, 30, 4);
    model.emplace(coll.Insert(d), d);
  }
  auto big = UniformText(rng, 4000, 4);
  DocId id = coll.Insert(big);
  model.emplace(id, big);
  EXPECT_GE(coll.num_tops(), 1u);
  std::vector<std::vector<Symbol>> live;
  for (const auto& [i, d] : model) live.push_back(d);
  for (int q = 0; q < 20; ++q) {
    auto p = SamplePattern(rng, live, 4, 4);
    auto got = coll.Find(p);
    std::sort(got.begin(), got.end());
    ASSERT_EQ(got, NaiveFind(model, p));
  }
  // Deleting the oversized doc must eventually drop its top collection.
  coll.Erase(id);
  model.erase(id);
  auto p = SamplePattern(rng, {big}, 6, 4);
  auto got = coll.Find(p);
  std::sort(got.begin(), got.end());
  EXPECT_EQ(got, NaiveFind(model, p));
}

TEST(T2Sync, HeavyDeletionTriggersPurges) {
  DynamicCollectionT2<FmIndex> coll(SmallT2(RebuildMode::kSynchronous));
  Rng rng(2007);
  std::vector<DocId> ids;
  std::map<DocId, std::vector<Symbol>> model;
  for (int i = 0; i < 400; ++i) {
    auto d = UniformText(rng, 40, 4);
    DocId id = coll.Insert(d);
    ids.push_back(id);
    model.emplace(id, d);
  }
  // Delete 90%.
  for (size_t i = 0; i < ids.size(); ++i) {
    if (i % 10 == 0) continue;
    ASSERT_TRUE(coll.Erase(ids[i]));
    model.erase(ids[i]);
  }
  coll.ForceAllPending();
  coll.CheckInvariants();
  std::vector<std::vector<Symbol>> live;
  for (const auto& [i, d] : model) live.push_back(d);
  for (int q = 0; q < 20; ++q) {
    auto p = SamplePattern(rng, live, 3, 4);
    auto got = coll.Find(p);
    std::sort(got.begin(), got.end());
    ASSERT_EQ(got, NaiveFind(model, p));
  }
}

TEST(T2Threaded, DeletionsDuringBackgroundBuildAreReplayed) {
  DynamicCollectionT2<FmIndex> coll(SmallT2(RebuildMode::kThreaded));
  Rng rng(2008);
  std::map<DocId, std::vector<Symbol>> model;
  // Fill beyond C0 so a background build starts, then delete immediately.
  std::vector<DocId> ids;
  for (int i = 0; i < 120; ++i) {
    auto d = UniformText(rng, 20, 4);
    DocId id = coll.Insert(d);
    ids.push_back(id);
    model.emplace(id, d);
  }
  // Erase a batch without waiting for pending builds.
  for (int i = 0; i < 60; ++i) {
    coll.Erase(ids[i]);
    model.erase(ids[i]);
  }
  coll.ForceAllPending();
  coll.CheckInvariants();
  ASSERT_EQ(coll.num_docs(), model.size());
  std::vector<std::vector<Symbol>> live;
  for (const auto& [i, d] : model) live.push_back(d);
  for (int q = 0; q < 20; ++q) {
    auto p = SamplePattern(rng, live, 3, 4);
    auto got = coll.Find(p);
    std::sort(got.begin(), got.end());
    ASSERT_EQ(got, NaiveFind(model, p));
  }
}

TEST(T2Sync, EraseUnknownAndDoubleErase) {
  DynamicCollectionT2<FmIndex> coll(SmallT2(RebuildMode::kSynchronous));
  EXPECT_FALSE(coll.Erase(999));
  DocId id = coll.Insert({2, 3, 4});
  EXPECT_TRUE(coll.Erase(id));
  EXPECT_FALSE(coll.Erase(id));
  EXPECT_EQ(coll.num_docs(), 0u);
}

}  // namespace
}  // namespace dyndex
