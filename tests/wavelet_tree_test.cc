#include "seq/wavelet_tree.h"

#include <gtest/gtest.h>

#include <vector>

#include "util/rng.h"

namespace dyndex {
namespace {

class WaveletTreeTest
    : public ::testing::TestWithParam<std::tuple<uint64_t, uint32_t>> {
 protected:
  void Build() {
    auto [n, sigma] = GetParam();
    Rng rng(n * 31 + sigma);
    data_.resize(n);
    for (uint64_t i = 0; i < n; ++i) {
      data_[i] = static_cast<uint32_t>(rng.Below(sigma));
    }
    wt_ = WaveletTree(data_, sigma);
  }

  std::vector<uint32_t> data_;
  WaveletTree wt_;
};

TEST_P(WaveletTreeTest, AccessMatches) {
  Build();
  for (uint64_t i = 0; i < data_.size(); ++i) {
    ASSERT_EQ(wt_.Access(i), data_[i]) << i;
  }
}

TEST_P(WaveletTreeTest, RankMatchesNaive) {
  Build();
  auto [n, sigma] = GetParam();
  std::vector<uint64_t> counts(sigma, 0);
  for (uint64_t i = 0; i <= n; ++i) {
    // Check a few symbols at every position, all symbols at sparse positions.
    if (i % 17 == 0) {
      for (uint32_t c = 0; c < sigma; ++c) {
        ASSERT_EQ(wt_.Rank(c, i), counts[c]) << "c=" << c << " i=" << i;
      }
    } else if (i > 0) {
      // counts[] covers [0, i) here, including position i-1.
      uint32_t c = data_[i - 1];
      ASSERT_EQ(wt_.Rank(c, i), counts[c]) << "c=" << c << " i=" << i;
    }
    if (i < n) ++counts[data_[i]];
  }
}

TEST_P(WaveletTreeTest, SelectIsInverseOfRank) {
  Build();
  auto [n, sigma] = GetParam();
  (void)n;
  std::vector<uint64_t> seen(sigma, 0);
  for (uint64_t i = 0; i < data_.size(); ++i) {
    uint32_t c = data_[i];
    ASSERT_EQ(wt_.Select(c, seen[c]), i) << "c=" << c;
    ++seen[c];
  }
}

TEST_P(WaveletTreeTest, InverseSelectMatches) {
  Build();
  for (uint64_t i = 0; i < data_.size(); ++i) {
    auto [c, r] = wt_.InverseSelect(i);
    ASSERT_EQ(c, data_[i]);
    ASSERT_EQ(r, wt_.Rank(c, i));
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, WaveletTreeTest,
    ::testing::Combine(::testing::Values(0, 1, 100, 1000, 10000),
                       ::testing::Values(1u, 2u, 3u, 5u, 16u, 257u, 5000u)));

TEST(WaveletTreeBasic, UnaryAlphabet) {
  WaveletTree wt(std::vector<uint32_t>(50, 0), 1);
  EXPECT_EQ(wt.Access(7), 0u);
  EXPECT_EQ(wt.Rank(0, 50), 50u);
  EXPECT_EQ(wt.Select(0, 49), 49u);
}

TEST(WaveletTreeBasic, CountPerSymbol) {
  std::vector<uint32_t> data{3, 1, 4, 1, 5, 1, 2, 6};
  WaveletTree wt(data, 7);
  EXPECT_EQ(wt.Count(1), 3u);
  EXPECT_EQ(wt.Count(0), 0u);
  EXPECT_EQ(wt.Count(6), 1u);
}

}  // namespace
}  // namespace dyndex
