#include "bits/mark_tree.h"

#include <gtest/gtest.h>

#include <set>
#include <vector>

#include "util/rng.h"

namespace dyndex {
namespace {

class MarkTreeTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(MarkTreeTest, RandomOpsMatchSet) {
  uint64_t universe = GetParam();
  MarkTree mt(universe);
  std::set<uint64_t> model;
  Rng rng(universe);
  for (int step = 0; step < 3000; ++step) {
    uint64_t i = rng.Below(universe);
    switch (rng.Below(3)) {
      case 0:
        mt.Mark(i);
        model.insert(i);
        break;
      case 1:
        mt.Unmark(i);
        model.erase(i);
        break;
      default: {
        ASSERT_EQ(mt.IsMarked(i), model.count(i) > 0);
        auto it = model.lower_bound(i);
        uint64_t expect = it == model.end() ? MarkTree::kNone : *it;
        ASSERT_EQ(mt.NextMarked(i), expect) << "at " << i;
        break;
      }
    }
  }
  // Full enumeration.
  std::vector<uint64_t> got;
  mt.ForEachMarked(0, universe, [&](uint64_t p) { got.push_back(p); });
  std::vector<uint64_t> expect(model.begin(), model.end());
  EXPECT_EQ(got, expect);
}

INSTANTIATE_TEST_SUITE_P(Sweep, MarkTreeTest,
                         ::testing::Values(1, 64, 65, 4096, 4097, 1000000));

TEST(MarkTreeBasic, MarkUnmarkIdempotent) {
  MarkTree mt(100);
  mt.Mark(50);
  mt.Mark(50);
  EXPECT_TRUE(mt.IsMarked(50));
  mt.Unmark(50);
  EXPECT_FALSE(mt.IsMarked(50));
  mt.Unmark(50);
  EXPECT_FALSE(mt.IsMarked(50));
  EXPECT_EQ(mt.NextMarked(0), MarkTree::kNone);
}

TEST(MarkTreeBasic, RangeEnumeration) {
  MarkTree mt(1000);
  for (uint64_t i = 0; i < 1000; i += 100) mt.Mark(i);
  std::vector<uint64_t> got;
  mt.ForEachMarked(150, 750, [&](uint64_t p) { got.push_back(p); });
  EXPECT_EQ(got, (std::vector<uint64_t>{200, 300, 400, 500, 600, 700}));
}

TEST(MarkTreeBasic, BoundaryPositions) {
  MarkTree mt(128);
  mt.Mark(0);
  mt.Mark(63);
  mt.Mark(64);
  mt.Mark(127);
  EXPECT_EQ(mt.NextMarked(0), 0u);
  EXPECT_EQ(mt.NextMarked(1), 63u);
  EXPECT_EQ(mt.NextMarked(64), 64u);
  EXPECT_EQ(mt.NextMarked(65), 127u);
  EXPECT_EQ(mt.NextMarked(127), 127u);
}

}  // namespace
}  // namespace dyndex
