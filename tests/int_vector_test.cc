#include "util/int_vector.h"

#include <gtest/gtest.h>

#include <vector>

#include "util/rng.h"

namespace dyndex {
namespace {

class IntVectorWidthTest : public ::testing::TestWithParam<uint32_t> {};

TEST_P(IntVectorWidthTest, SetGetRoundTrip) {
  uint32_t width = GetParam();
  uint64_t n = 1000;
  IntVector v(n, width);
  Rng rng(width);
  std::vector<uint64_t> expected(n);
  uint64_t mask = width == 64 ? ~0ull : LowMask(width);
  for (uint64_t i = 0; i < n; ++i) {
    expected[i] = rng.Next() & mask;
    v.Set(i, expected[i]);
  }
  for (uint64_t i = 0; i < n; ++i) EXPECT_EQ(v.Get(i), expected[i]) << i;
}

TEST_P(IntVectorWidthTest, OverwriteIsClean) {
  uint32_t width = GetParam();
  if (width == 0) return;
  IntVector v(100, width);
  uint64_t mask = width == 64 ? ~0ull : LowMask(width);
  for (uint64_t i = 0; i < 100; ++i) v.Set(i, mask);
  v.Set(50, 0);
  EXPECT_EQ(v.Get(50), 0ull);
  EXPECT_EQ(v.Get(49), mask);
  EXPECT_EQ(v.Get(51), mask);
}

INSTANTIATE_TEST_SUITE_P(Widths, IntVectorWidthTest,
                         ::testing::Values(0u, 1u, 2u, 3u, 7u, 8u, 9u, 13u, 31u,
                                           32u, 33u, 63u, 64u));

TEST(IntVectorTest, PackChoosesMinimalWidth) {
  IntVector v = IntVector::Pack({0, 1, 2, 3, 4, 5, 6, 7});
  EXPECT_EQ(v.width(), 3u);
  for (uint64_t i = 0; i < 8; ++i) EXPECT_EQ(v.Get(i), i);
}

TEST(IntVectorTest, PushBackGrows) {
  IntVector v(0, 17);
  for (uint64_t i = 0; i < 5000; ++i) v.PushBack(i & LowMask(17));
  EXPECT_EQ(v.size(), 5000u);
  for (uint64_t i = 0; i < 5000; ++i) EXPECT_EQ(v.Get(i), i & LowMask(17));
}

TEST(IntVectorTest, EmptyAndZeroWidth) {
  IntVector v;
  EXPECT_TRUE(v.empty());
  IntVector z(10, 0);
  EXPECT_EQ(z.Get(5), 0ull);
  z.Set(5, 0);
  EXPECT_EQ(z.size(), 10u);
}

}  // namespace
}  // namespace dyndex
