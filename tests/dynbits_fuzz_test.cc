// Seeded differential fuzzing of the B-tree dynamic-bits engine against a
// naive std::vector<uint8_t> model: mixed Insert/Erase/Set/Rank/Select/Get plus
// the bulk paths (Build, InsertRange, AppendRun) and RankPair, including
// sigma=1-style all-zeros/all-ones runs and leaf-boundary sizes. Every
// failure message carries the seed that produced it.
#include <gtest/gtest.h>

#include <algorithm>
#include <utility>
#include <vector>

#include "dynbits/dynamic_bit_vector.h"
#include "util/rng.h"

namespace dyndex {
namespace {

std::vector<uint64_t> PackBits(const std::vector<uint8_t>& bits) {
  std::vector<uint64_t> words((bits.size() + 63) / 64, 0);
  for (uint64_t i = 0; i < bits.size(); ++i) {
    if (bits[i]) words[i >> 6] |= 1ull << (i & 63);
  }
  return words;
}

void CheckFull(const DynamicBitVector& dbv, const std::vector<uint8_t>& model,
               uint64_t seed) {
  ASSERT_EQ(dbv.size(), model.size()) << "seed=" << seed;
  uint64_t ones = 0, k1 = 0, k0 = 0;
  for (uint64_t i = 0; i < model.size(); ++i) {
    ASSERT_EQ(dbv.Get(i), model[i]) << "seed=" << seed << " i=" << i;
    ASSERT_EQ(dbv.Rank1(i), ones) << "seed=" << seed << " i=" << i;
    if (model[i]) {
      ASSERT_EQ(dbv.Select1(k1), i) << "seed=" << seed << " k=" << k1;
      ++k1;
      ++ones;
    } else {
      ASSERT_EQ(dbv.Select0(k0), i) << "seed=" << seed << " k=" << k0;
      ++k0;
    }
  }
  ASSERT_EQ(dbv.ones(), ones) << "seed=" << seed;
  ASSERT_EQ(dbv.Rank1(model.size()), ones) << "seed=" << seed;
}

// O(window) spot checks so churn rounds stay fast even on large models: the
// end-of-round CheckFull is the exhaustive pass.
void CheckSampled(const DynamicBitVector& dbv,
                  const std::vector<uint8_t>& model, Rng& rng, uint64_t seed) {
  ASSERT_EQ(dbv.size(), model.size()) << "seed=" << seed;
  if (model.empty()) {
    ASSERT_EQ(dbv.ones(), 0u) << "seed=" << seed;
    return;
  }
  for (int probe = 0; probe < 6; ++probe) {
    // Rank over a small window, pinned to the model by counting bits in it.
    uint64_t i = rng.Below(model.size() + 1);
    uint64_t w = std::min<uint64_t>(model.size() - i, rng.Below(512) + 1);
    uint64_t expect = 0;
    for (uint64_t p = i; p < i + w; ++p) expect += model[p] ? 1 : 0;
    ASSERT_EQ(dbv.Rank1(i + w) - dbv.Rank1(i), expect)
        << "seed=" << seed << " i=" << i << " w=" << w;
    // RankPair agrees with two independent ranks across any distance.
    uint64_t j = i + rng.Below(model.size() + 1 - i);
    auto [ri, rj] = dbv.RankPair(i, j);
    ASSERT_EQ(ri, dbv.Rank1(i)) << "seed=" << seed << " i=" << i;
    ASSERT_EQ(rj, dbv.Rank1(j)) << "seed=" << seed << " j=" << j;
    // Get matches the model pointwise.
    uint64_t g = rng.Below(model.size());
    ASSERT_EQ(dbv.Get(g), model[g]) << "seed=" << seed << " i=" << g;
  }
  // Select inverts rank and lands on the right bit value.
  if (dbv.ones() > 0) {
    uint64_t k = rng.Below(dbv.ones());
    uint64_t p = dbv.Select1(k);
    ASSERT_TRUE(model[p]) << "seed=" << seed << " k=" << k;
    ASSERT_EQ(dbv.Rank1(p), k) << "seed=" << seed << " k=" << k;
  }
  if (dbv.zeros() > 0) {
    uint64_t k = rng.Below(dbv.zeros());
    uint64_t p = dbv.Select0(k);
    ASSERT_FALSE(model[p]) << "seed=" << seed << " k=" << k;
    ASSERT_EQ(p - dbv.Rank1(p), k) << "seed=" << seed << " k=" << k;
  }
}

// One churn round: random ops against the model, periodically verified.
void FuzzRound(uint64_t seed, uint64_t steps, double bias) {
  Rng rng(seed);
  DynamicBitVector dbv;
  std::vector<uint8_t> model;
  // Occasionally start from a bulk load at an adversarial size: around leaf
  // capacity (1024), fill size (768), min size (256) and word boundaries.
  static constexpr uint64_t kBoundary[] = {0,   1,   63,   64,   65,   255,
                                           256, 512, 767,  768,  769,  1023,
                                           1024, 1025, 2048, 12288};
  if (rng.Chance(0.5)) {
    uint64_t n = kBoundary[rng.Below(std::size(kBoundary))] + rng.Below(3);
    model.assign(n, false);
    for (uint64_t i = 0; i < n; ++i) model[i] = rng.Chance(bias);
    dbv.Build(PackBits(model).data(), n);
  }
  for (uint64_t step = 0; step < steps; ++step) {
    uint64_t op = rng.Below(100);
    // Cap growth so model memmoves stay cheap; past the cap the
    // round keeps churning erase-side (merge/borrow paths).
    if (model.size() > 40000 && op < 80) op = 85 + op % 15;
    if (op < 35 || model.empty()) {
      uint64_t pos = rng.Below(model.size() + 1);
      bool b = rng.Chance(bias);
      dbv.Insert(pos, b);
      model.insert(model.begin() + static_cast<int64_t>(pos), b);
    } else if (op < 60) {
      uint64_t pos = rng.Below(model.size());
      dbv.Erase(pos);
      model.erase(model.begin() + static_cast<int64_t>(pos));
    } else if (op < 70) {
      uint64_t pos = rng.Below(model.size());
      bool b = rng.Chance(bias);
      dbv.Set(pos, b);
      model[pos] = b;
    } else if (op < 80) {
      // Bulk range insert of up to ~3 leaves of bits, possibly constant
      // (sigma=1-style run).
      uint64_t len = rng.Below(3000) + 1;
      uint64_t pos = rng.Below(model.size() + 1);
      std::vector<uint8_t> chunk(len);
      bool constant = rng.Chance(0.3);
      bool fill = rng.Chance(0.5);
      for (uint64_t k = 0; k < len; ++k) {
        chunk[k] = constant ? fill : rng.Chance(bias);
      }
      dbv.InsertRange(pos, PackBits(chunk).data(), len);
      model.insert(model.begin() + static_cast<int64_t>(pos), chunk.begin(),
                   chunk.end());
    } else if (op < 85) {
      uint64_t len = rng.Below(2000) + 1;
      bool fill = rng.Chance(0.5);
      dbv.AppendRun(fill, len);
      model.insert(model.end(), len, fill);
    } else if (op < 90 && !model.empty()) {
      // Burst of point erases (drives leaf merges/borrows).
      uint64_t burst = rng.Below(200) + 1;
      for (uint64_t k = 0; k < burst && !model.empty(); ++k) {
        uint64_t pos = rng.Below(model.size());
        dbv.Erase(pos);
        model.erase(model.begin() + static_cast<int64_t>(pos));
      }
    } else {
      CheckSampled(dbv, model, rng, seed);
    }
    if (step % 977 == 976) CheckSampled(dbv, model, rng, seed);
  }
  CheckFull(dbv, model, seed);
}

TEST(DynBitsFuzzTest, MixedChurnSeedSweep) {
  for (uint64_t seed = 1; seed <= 12; ++seed) FuzzRound(seed, 4000, 0.5);
}

TEST(DynBitsFuzzTest, SparseAndDenseBias) {
  // All-zeros-ish and all-ones-ish content stresses Select0/Select1
  // asymmetrically and produces long constant runs.
  for (uint64_t seed = 100; seed < 104; ++seed) FuzzRound(seed, 2500, 0.02);
  for (uint64_t seed = 200; seed < 204; ++seed) FuzzRound(seed, 2500, 0.98);
}

TEST(DynBitsFuzzTest, BuildMatchesModelAtBoundarySizes) {
  for (uint64_t n : {0ull, 1ull, 63ull, 64ull, 65ull, 255ull, 256ull, 511ull,
                     512ull, 767ull, 768ull, 769ull, 1023ull, 1024ull,
                     1025ull, 1536ull, 2047ull, 2048ull, 4096ull, 100000ull}) {
    Rng rng(n * 31 + 7);
    std::vector<uint8_t> model(n);
    for (uint64_t i = 0; i < n; ++i) model[i] = rng.Chance(0.5);
    DynamicBitVector dbv;
    dbv.Build(PackBits(model).data(), n);
    CheckSampled(dbv, model, rng, n);
    if (n <= 4096) CheckFull(dbv, model, n);
  }
}

TEST(DynBitsFuzzTest, AllOnesAllZerosRuns) {
  DynamicBitVector dbv;
  dbv.AppendRun(false, 5000);
  dbv.AppendRun(true, 5000);
  EXPECT_EQ(dbv.size(), 10000u);
  EXPECT_EQ(dbv.ones(), 5000u);
  EXPECT_EQ(dbv.Rank1(5000), 0u);
  EXPECT_EQ(dbv.Rank1(10000), 5000u);
  EXPECT_EQ(dbv.Select1(0), 5000u);
  EXPECT_EQ(dbv.Select0(4999), 4999u);
  auto [a, b] = dbv.RankPair(2500, 7500);
  EXPECT_EQ(a, 0u);
  EXPECT_EQ(b, 2500u);
  // Erase the whole thing back down through the merge paths.
  Rng rng(42);
  while (dbv.size() > 0) dbv.Erase(rng.Below(dbv.size()));
  EXPECT_EQ(dbv.ones(), 0u);
  // And the emptied structure is reusable.
  dbv.PushBack(true);
  EXPECT_EQ(dbv.Select1(0), 0u);
}

TEST(DynBitsFuzzTest, ClearReleasesAndRebuilds) {
  DynamicBitVector dbv;
  dbv.AppendRun(true, 100000);
  uint64_t full = dbv.SpaceBytes();
  dbv.Clear();
  EXPECT_EQ(dbv.size(), 0u);
  EXPECT_LT(dbv.SpaceBytes(), full);
  dbv.PushBack(false);
  EXPECT_EQ(dbv.size(), 1u);
  EXPECT_FALSE(dbv.Get(0));
}

// SpaceBytes must report arena-resident bytes: capacity does not shrink when
// content does (freelist keeps the chunks), and a populated vector accounts
// at least its payload.
TEST(DynBitsFuzzTest, SpaceBytesIsArenaResident) {
  DynamicBitVector dbv;
  Rng rng(7);
  for (int i = 0; i < 200000; ++i) dbv.PushBack(rng.Chance(0.5));
  uint64_t populated = dbv.SpaceBytes();
  EXPECT_GE(populated, 200000 / 8u);
  while (dbv.size() > 64) dbv.Erase(dbv.size() - 1);
  // Freed nodes stay arena-resident (freelist), and the accounting says so.
  EXPECT_GE(dbv.SpaceBytes(), populated / 2);
}

}  // namespace
}  // namespace dyndex
