// Differential model-checking harness shared by the correctness tests.
//
// ReferenceModel is the simplest possible document collection: documents as
// std::strings, queries as std::string scans. RunDifferentialChurn drives a
// DynamicIndex and the model through the same seeded random op sequence
// (insert/delete/count/locate/extract) and asserts equal answers; every
// assertion carries the seed, so a failure line is a one-token repro.
#ifndef DYNDEX_TESTS_MODEL_CHECKER_H_
#define DYNDEX_TESTS_MODEL_CHECKER_H_

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <cstring>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include "gen/text_gen.h"
#include "serve/dynamic_index.h"
#include "text/concat_text.h"
#include "util/rng.h"

namespace dyndex {

/// Naive string-scan reference collection. Symbols are stored as fixed
/// 4-byte little-endian chunks, so any alphabet fits and substring search is
/// std::string::find restricted to 4-aligned hits.
class ReferenceModel {
 public:
  static std::string Encode(const std::vector<Symbol>& symbols) {
    std::string s(symbols.size() * 4, '\0');
    for (uint64_t i = 0; i < symbols.size(); ++i) {
      std::memcpy(&s[i * 4], &symbols[i], 4);
    }
    return s;
  }

  void Insert(DocId id, const std::vector<Symbol>& symbols) {
    docs_[id] = Encode(symbols);
  }

  bool Erase(DocId id) { return docs_.erase(id) > 0; }

  bool Contains(DocId id) const { return docs_.find(id) != docs_.end(); }

  uint64_t DocLenOf(DocId id) const { return docs_.at(id).size() / 4; }

  uint64_t num_docs() const { return docs_.size(); }

  uint64_t live_symbols() const {
    uint64_t t = 0;
    for (const auto& [id, d] : docs_) t += d.size() / 4;
    return t;
  }

  /// All (doc, offset) occurrences of `pattern`, sorted.
  std::vector<Occurrence> Find(const std::vector<Symbol>& pattern) const {
    std::vector<Occurrence> out;
    std::string p = Encode(pattern);
    for (const auto& [id, doc] : docs_) {
      for (size_t at = doc.find(p); at != std::string::npos;
           at = doc.find(p, at + 1)) {
        if (at % 4 == 0) out.push_back({id, at / 4});
      }
    }
    std::sort(out.begin(), out.end());
    return out;
  }

  uint64_t Count(const std::vector<Symbol>& pattern) const {
    return Find(pattern).size();
  }

  std::vector<Symbol> Extract(DocId id, uint64_t from, uint64_t len) const {
    const std::string& doc = docs_.at(id);
    std::vector<Symbol> out(len);
    for (uint64_t i = 0; i < len; ++i) {
      std::memcpy(&out[i], &doc[(from + i) * 4], 4);
    }
    return out;
  }

  /// Decoded live documents (for pattern sampling).
  std::vector<std::vector<Symbol>> LiveDocs() const {
    std::vector<std::vector<Symbol>> out;
    for (const auto& [id, doc] : docs_) {
      std::vector<Symbol> d(doc.size() / 4);
      for (uint64_t i = 0; i < d.size(); ++i) {
        std::memcpy(&d[i], &doc[i * 4], 4);
      }
      out.push_back(std::move(d));
    }
    return out;
  }

  const std::map<DocId, std::string>& docs() const { return docs_; }

 private:
  std::map<DocId, std::string> docs_;
};

struct ChurnConfig {
  int steps = 500;
  uint32_t sigma = 4;
  uint64_t max_doc_len = 80;
  uint64_t max_pattern_len = 6;
  /// Out of 10: ops 0..insert-1 insert, next erase_weight erase, next
  /// query_weight query (count+locate), rest extract.
  uint32_t insert_weight = 5;
  uint32_t erase_weight = 2;
  uint32_t query_weight = 2;
  /// Also run the full query check after every single op (slow; catches
  /// transient states between rebuilds).
  bool check_every_step = false;
  /// Invoke backend CheckInvariants() every `invariant_every` steps.
  int invariant_every = 100;
};

namespace model_checker_internal {

inline void CheckQueries(DynamicIndex& index, const ReferenceModel& model,
                         Rng& rng, const ChurnConfig& cfg, uint64_t seed,
                         int step) {
  auto live = model.LiveDocs();
  auto p = SamplePattern(rng, live, rng.Range(1, cfg.max_pattern_len),
                         cfg.sigma);
  auto expect = model.Find(p);
  auto got = index.Locate(p);
  std::sort(got.begin(), got.end());
  ASSERT_EQ(got, expect) << "Locate mismatch, seed=" << seed << " step="
                         << step << " backend=" << index.backend_name();
  ASSERT_EQ(index.Count(p), expect.size())
      << "Count mismatch, seed=" << seed << " step=" << step
      << " backend=" << index.backend_name();
}

}  // namespace model_checker_internal

/// Drives `index` and a ReferenceModel through the same seeded random op
/// sequence, comparing every answer. On mismatch the assertion message names
/// the seed, the step and the backend.
inline void RunDifferentialChurn(DynamicIndex& index, uint64_t seed,
                                 const ChurnConfig& cfg = {}) {
  ReferenceModel model;
  Rng rng(seed);
  for (int step = 0; step < cfg.steps; ++step) {
    uint64_t op = rng.Below(10);
    if (op < cfg.insert_weight || model.num_docs() == 0) {
      auto doc =
          UniformText(rng, rng.Range(1, cfg.max_doc_len), cfg.sigma);
      DocId id = index.Insert(doc);
      ASSERT_FALSE(model.Contains(id))
          << "duplicate id " << id << ", seed=" << seed << " step=" << step;
      model.Insert(id, doc);
    } else if (op < cfg.insert_weight + cfg.erase_weight) {
      auto it = model.docs().begin();
      std::advance(it, static_cast<int64_t>(rng.Below(model.num_docs())));
      DocId id = it->first;
      ASSERT_TRUE(index.Erase(id))
          << "Erase(" << id << ") failed, seed=" << seed << " step=" << step;
      model.Erase(id);
    } else if (op < cfg.insert_weight + cfg.erase_weight + cfg.query_weight) {
      model_checker_internal::CheckQueries(index, model, rng, cfg, seed, step);
      if (::testing::Test::HasFatalFailure()) return;
    } else {
      auto it = model.docs().begin();
      std::advance(it, static_cast<int64_t>(rng.Below(model.num_docs())));
      DocId id = it->first;
      uint64_t doc_len = model.DocLenOf(id);
      ASSERT_EQ(index.DocLenOf(id), doc_len)
          << "DocLenOf mismatch, seed=" << seed << " step=" << step;
      uint64_t from = rng.Below(doc_len);
      uint64_t len = rng.Below(doc_len - from + 1);
      ASSERT_EQ(index.Extract(id, from, len), model.Extract(id, from, len))
          << "Extract mismatch, seed=" << seed << " step=" << step
          << " backend=" << index.backend_name();
    }
    if (cfg.check_every_step) {
      model_checker_internal::CheckQueries(index, model, rng, cfg, seed, step);
      if (::testing::Test::HasFatalFailure()) return;
    }
    if (cfg.invariant_every > 0 && step % cfg.invariant_every ==
                                       cfg.invariant_every - 1) {
      index.CheckInvariants();
    }
  }
  // Final exhaustive pass: barrier all background work, then re-check.
  index.ForceAllPending();
  index.CheckInvariants();
  ASSERT_EQ(index.num_docs(), model.num_docs()) << "seed=" << seed;
  ASSERT_EQ(index.live_symbols(), model.live_symbols()) << "seed=" << seed;
  Rng qrng(seed ^ 0x5deece66dull);
  for (int q = 0; q < 25 && model.num_docs() > 0; ++q) {
    model_checker_internal::CheckQueries(index, model, qrng, cfg, seed,
                                         cfg.steps + q);
    if (::testing::Test::HasFatalFailure()) return;
  }
}

}  // namespace dyndex

#endif  // DYNDEX_TESTS_MODEL_CHECKER_H_
