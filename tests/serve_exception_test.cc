// Exception-safety contracts of the serving layer:
//
//  * EpochGuard::Write — a writer body that throws must unwind cleanly:
//    sequence restored to even (readers not wedged behind a forever-odd
//    seqlock), epoch unmoved (the batch never happened), writer gate
//    released, and the facade fully usable afterwards.
//  * ThreadPool::RunAll — a throwing slice must not skip its siblings (a
//    cross-shard batch may never half-apply by slice) and must surface the
//    first exception to the scatter-join caller instead of std::terminate.
//  * ShardedIndex — one shard's writer throwing leaves the other shards'
//    sub-batches applied and every shard serving.

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <stdexcept>
#include <utility>
#include <vector>

#include "gtest/gtest.h"
#include "serve/concurrent_index.h"
#include "serve/dynamic_index.h"
#include "serve/sharded_index.h"
#include "serve/thread_pool.h"

namespace dyndex {
namespace {

std::vector<Symbol> Doc(int tag) {
  return {kMinSymbol + static_cast<Symbol>(tag % 7), kMinSymbol,
          kMinSymbol + 1, kMinSymbol + static_cast<Symbol>(tag % 5)};
}

/// Delegating index whose mutations throw while the shared trigger is set —
/// the fault injector for the writer-unwind tests.
class ThrowingIndex final : public DynamicIndex {
 public:
  ThrowingIndex(std::unique_ptr<DynamicIndex> base,
                std::shared_ptr<std::atomic<bool>> throw_on_write)
      : base_(std::move(base)), throw_on_write_(std::move(throw_on_write)) {}

  DocId Insert(std::vector<Symbol> symbols) override {
    MaybeThrow();
    return base_->Insert(std::move(symbols));
  }
  bool Erase(DocId id) override {
    MaybeThrow();
    return base_->Erase(id);
  }
  std::vector<DocId> InsertBulk(
      std::vector<std::vector<Symbol>> docs) override {
    MaybeThrow();
    return base_->InsertBulk(std::move(docs));
  }

  uint64_t Count(const std::vector<Symbol>& pattern) const override {
    return base_->Count(pattern);
  }
  std::vector<Occurrence> Locate(
      const std::vector<Symbol>& pattern) const override {
    return base_->Locate(pattern);
  }
  std::vector<Symbol> Extract(DocId id, uint64_t from,
                              uint64_t len) const override {
    return base_->Extract(id, from, len);
  }
  bool Contains(DocId id) const override { return base_->Contains(id); }
  uint64_t DocLenOf(DocId id) const override { return base_->DocLenOf(id); }
  uint64_t num_docs() const override { return base_->num_docs(); }
  uint64_t live_symbols() const override { return base_->live_symbols(); }
  void ExportSnapshot(std::vector<Document>* docs, DocId* next_id) override {
    base_->ExportSnapshot(docs, next_id);
  }
  void LoadSnapshot(std::vector<Document> docs, DocId next_id) override {
    base_->LoadSnapshot(std::move(docs), next_id);
  }
  const char* backend_name() const override { return base_->backend_name(); }

 private:
  void MaybeThrow() {
    if (throw_on_write_->load()) {
      throw std::runtime_error("injected writer failure");
    }
  }

  std::unique_ptr<DynamicIndex> base_;
  std::shared_ptr<std::atomic<bool>> throw_on_write_;
};

TEST(EpochGuardExceptionTest, ThrowingWriterUnwindsCleanly) {
  auto trigger = std::make_shared<std::atomic<bool>>(false);
  ConcurrentIndex index(std::make_unique<ThrowingIndex>(
      MakeDynamicIndex(Backend::kBaseline), trigger));

  std::vector<DocId> ids = index.InsertBatch({Doc(1), Doc(2)});
  ASSERT_EQ(ids.size(), 2u);
  const uint64_t epoch_before = index.epoch();
  ASSERT_EQ(index.sequence() % 2, 0u);

  trigger->store(true);
  EXPECT_THROW(index.InsertBatch({Doc(3)}), std::runtime_error);
  EXPECT_THROW(index.EraseBatch({ids[0]}), std::runtime_error);
  trigger->store(false);

  // The failed batches never happened: sequence back to even (readers not
  // wedged), epoch unmoved, the pre-throw documents still served.
  EXPECT_EQ(index.sequence() % 2, 0u);
  EXPECT_EQ(index.epoch(), epoch_before);
  EXPECT_EQ(index.num_docs(), 2u);
  std::vector<Symbol> out;
  EXPECT_TRUE(index.Extract(ids[0], 0, 4, &out));

  // And the writer gate was released: the next writer proceeds normally.
  std::vector<DocId> more = index.InsertBatch({Doc(4)});
  ASSERT_EQ(more.size(), 1u);
  EXPECT_EQ(index.epoch(), epoch_before + 1);
  EXPECT_EQ(index.num_docs(), 3u);
}

TEST(ThreadPoolExceptionTest, ScatteredThrowRunsEverySiblingThenRethrows) {
  ThreadPool pool(3);
  std::atomic<uint32_t> ran{0};
  std::vector<std::function<void()>> tasks;
  for (int i = 0; i < 6; ++i) {
    tasks.push_back([&ran, i] {
      ran.fetch_add(1);
      if (i == 2) throw std::runtime_error("slice 2 failed");
    });
  }
  EXPECT_THROW(pool.RunAll(std::move(tasks)), std::runtime_error);
  EXPECT_EQ(ran.load(), 6u);

  // The pool survives: the next batch runs clean.
  std::atomic<uint32_t> again{0};
  std::vector<std::function<void()>> ok;
  for (int i = 0; i < 4; ++i) ok.push_back([&again] { again.fetch_add(1); });
  pool.RunAll(std::move(ok));
  EXPECT_EQ(again.load(), 4u);
}

TEST(ThreadPoolExceptionTest, InlineSliceThrowStillJoinsTheWorkers) {
  // tasks[0] runs inline on the caller; its exception must not skip the
  // join (workers still hold references into the caller's frame).
  ThreadPool pool(2);
  std::atomic<uint32_t> ran{0};
  std::vector<std::function<void()>> tasks;
  tasks.push_back([&ran]() -> void {
    ran.fetch_add(1);
    throw std::runtime_error("inline slice failed");
  });
  for (int i = 0; i < 3; ++i) tasks.push_back([&ran] { ran.fetch_add(1); });
  EXPECT_THROW(pool.RunAll(std::move(tasks)), std::runtime_error);
  EXPECT_EQ(ran.load(), 4u);
}

TEST(ThreadPoolExceptionTest, SequentialPathKeepsTheSameContract) {
  // 0 workers degenerates to an inline loop — same all-run + first-rethrow
  // contract, and deterministically the *first* exception in task order.
  ThreadPool pool(0);
  std::atomic<uint32_t> ran{0};
  std::vector<std::function<void()>> tasks;
  tasks.push_back([&ran]() -> void {
    ran.fetch_add(1);
    throw std::logic_error("first");
  });
  tasks.push_back([&ran] { ran.fetch_add(1); });
  tasks.push_back([&ran]() -> void {
    ran.fetch_add(1);
    throw std::runtime_error("second");
  });
  try {
    pool.RunAll(std::move(tasks));
    FAIL() << "RunAll swallowed the exceptions";
  } catch (const std::logic_error& e) {
    EXPECT_STREQ(e.what(), "first");
  }
  EXPECT_EQ(ran.load(), 3u);
}

TEST(ShardedIndexExceptionTest, OneThrowingShardLeavesTheOthersApplied) {
  auto trigger = std::make_shared<std::atomic<bool>>(false);
  // The factory is called once per shard in shard order; shard 1 gets the
  // fault injector.
  int built = 0;
  ShardedIndex index(3, [&]() -> std::unique_ptr<DynamicIndex> {
    auto base = MakeDynamicIndex(Backend::kBaseline);
    if (built++ == 1) {
      return std::make_unique<ThrowingIndex>(std::move(base), trigger);
    }
    return base;
  });

  // Warm every shard, then fail shard 1's next sub-batch.
  std::vector<DocId> warm = index.InsertBatch({Doc(0), Doc(1), Doc(2)});
  ASSERT_EQ(warm.size(), 3u);
  ASSERT_EQ(index.num_docs(), 3u);

  trigger->store(true);
  EXPECT_THROW(index.InsertBatch({Doc(3), Doc(4), Doc(5)}),
               std::runtime_error);
  trigger->store(false);

  // Per-shard atomicity: the two healthy shards applied their slices, the
  // throwing shard rolled back to its pre-batch state, and every shard is
  // quiescent (even sequence) and serving.
  EXPECT_EQ(index.num_docs(), 5u);
  ShardSeqs seqs = index.seqs();
  for (uint64_t seq : seqs) EXPECT_EQ(seq % 2, 0u);
  for (DocId id : warm) {
    std::vector<Symbol> out;
    EXPECT_TRUE(index.Extract(id, 0, 4, &out)) << "id=" << id;
  }
  index.CheckInvariants();

  // The wedge-free facade takes the next batch normally.
  std::vector<DocId> after = index.InsertBatch({Doc(6), Doc(7), Doc(8)});
  ASSERT_EQ(after.size(), 3u);
  EXPECT_EQ(index.num_docs(), 8u);
}

}  // namespace
}  // namespace dyndex
