#include "bits/elias_fano.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "util/rng.h"

namespace dyndex {
namespace {

std::vector<uint64_t> RandomSorted(uint64_t m, uint64_t universe, uint64_t seed,
                                   bool strict) {
  Rng rng(seed);
  std::vector<uint64_t> v;
  if (strict) {
    // m distinct values.
    while (v.size() < m) v.push_back(rng.Below(universe));
    std::sort(v.begin(), v.end());
    v.erase(std::unique(v.begin(), v.end()), v.end());
  } else {
    for (uint64_t i = 0; i < m; ++i) v.push_back(rng.Below(universe));
    std::sort(v.begin(), v.end());
  }
  return v;
}

class EliasFanoTest : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(EliasFanoTest, AccessAndRank) {
  auto [mi, ui] = GetParam();
  uint64_t m = static_cast<uint64_t>(mi);
  uint64_t universe = static_cast<uint64_t>(ui);
  auto values = RandomSorted(m, universe, m * 7919 + universe, false);
  EliasFano ef(values, universe);
  ASSERT_EQ(ef.size(), values.size());
  for (uint64_t i = 0; i < values.size(); ++i) {
    ASSERT_EQ(ef.Get(i), values[i]) << i;
  }
  // RankLess at sampled query points.
  Rng rng(42);
  for (int q = 0; q < 200; ++q) {
    uint64_t x = rng.Below(universe + 1);
    uint64_t expect =
        std::lower_bound(values.begin(), values.end(), x) - values.begin();
    ASSERT_EQ(ef.RankLess(x), expect) << x;
  }
}

INSTANTIATE_TEST_SUITE_P(Sweep, EliasFanoTest,
                         ::testing::Combine(::testing::Values(1, 10, 100, 5000),
                                            ::testing::Values(10, 1000,
                                                              1000000)));

TEST(EliasFanoBasic, PredecessorIndex) {
  EliasFano ef({0, 5, 5, 17, 100}, 200);
  EXPECT_EQ(ef.PredecessorIndex(0), 0u);
  EXPECT_EQ(ef.PredecessorIndex(4), 0u);
  EXPECT_EQ(ef.PredecessorIndex(5), 2u);   // last copy of 5
  EXPECT_EQ(ef.PredecessorIndex(16), 2u);
  EXPECT_EQ(ef.PredecessorIndex(17), 3u);
  EXPECT_EQ(ef.PredecessorIndex(199), 4u);
}

TEST(EliasFanoBasic, Empty) {
  EliasFano ef(std::vector<uint64_t>{}, 100);
  EXPECT_EQ(ef.size(), 0u);
  EXPECT_EQ(ef.RankLess(50), 0u);
}

TEST(EliasFanoBasic, DenseSequential) {
  std::vector<uint64_t> v(1000);
  for (uint64_t i = 0; i < 1000; ++i) v[i] = i;
  EliasFano ef(v, 1000);
  for (uint64_t i = 0; i < 1000; ++i) {
    EXPECT_EQ(ef.Get(i), i);
    EXPECT_EQ(ef.RankLess(i), i);
    EXPECT_EQ(ef.PredecessorIndex(i), i);
  }
}

}  // namespace
}  // namespace dyndex
