// Shared conformance tests for the two static indexes (FmIndex and
// PackedSaIndex): the Transformations are generic over this interface, so both
// must satisfy identical contracts.
#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <vector>

#include "gen/text_gen.h"
#include "tests/testing_util.h"
#include "text/fm_index.h"
#include "text/packed_sa_index.h"
#include "util/rng.h"

namespace dyndex {
namespace {

template <typename Index>
Index BuildIndex(const ConcatText& text);

template <>
FmIndex BuildIndex<FmIndex>(const ConcatText& text) {
  FmIndex::Options opt;
  opt.sample_rate = 8;
  return FmIndex::Build(text, opt);
}

template <>
PackedSaIndex BuildIndex<PackedSaIndex>(const ConcatText& text) {
  return PackedSaIndex::Build(text, {});
}

template <typename Index>
class StaticIndexTest : public ::testing::Test {
 protected:
  void BuildCollection(uint32_t num_docs, uint64_t min_len, uint64_t max_len,
                       uint32_t sigma, uint64_t seed) {
    Rng rng(seed);
    docs_ = RandomDocs(rng, num_docs, min_len, max_len, sigma);
    std::vector<Document> d;
    for (uint32_t i = 0; i < docs_.size(); ++i) {
      d.push_back({static_cast<DocId>(i), docs_[i]});
    }
    text_ = ConcatText(d);
    idx_ = BuildIndex<Index>(text_);
  }

  // All live occurrences via Find + Locate + DocOfPos.
  std::vector<std::pair<uint32_t, uint64_t>> IndexOccurrences(
      const std::vector<Symbol>& p) {
    RowRange r = idx_.Find(p);
    std::vector<std::pair<uint32_t, uint64_t>> out;
    for (uint64_t row = r.begin; row < r.end; ++row) {
      uint64_t pos = idx_.Locate(row);
      uint32_t d = idx_.DocOfPos(pos);
      out.emplace_back(d, pos - idx_.doc_start(d));
    }
    std::sort(out.begin(), out.end());
    return out;
  }

  std::vector<std::vector<Symbol>> docs_;
  ConcatText text_;
  Index idx_;
};

using IndexTypes = ::testing::Types<FmIndex, PackedSaIndex>;
TYPED_TEST_SUITE(StaticIndexTest, IndexTypes);

TYPED_TEST(StaticIndexTest, FindLocateMatchesNaive) {
  this->BuildCollection(8, 20, 200, 6, 42);
  Rng rng(7);
  for (int q = 0; q < 50; ++q) {
    uint64_t len = rng.Range(1, 6);
    auto p = SamplePattern(rng, this->docs_, len, 6);
    ASSERT_EQ(this->IndexOccurrences(p), NaiveOccurrences(this->docs_, p));
  }
}

TYPED_TEST(StaticIndexTest, MissingPatternsReturnEmpty) {
  this->BuildCollection(4, 50, 100, 4, 43);
  // Symbol outside the alphabet.
  std::vector<Symbol> p{2, 3, 4, 99};
  EXPECT_TRUE(this->idx_.Find(p).empty());
  // Pattern longer than any document.
  Rng rng(1);
  auto longp = UniformText(rng, 500, 4);
  EXPECT_EQ(this->IndexOccurrences(longp),
            NaiveOccurrences(this->docs_, longp));
}

TYPED_TEST(StaticIndexTest, EmptyPatternMatchesAllRows) {
  this->BuildCollection(3, 10, 20, 4, 44);
  RowRange r = this->idx_.Find(std::vector<Symbol>{});
  EXPECT_EQ(r.size(), this->idx_.NumRows());
}

TYPED_TEST(StaticIndexTest, ExtractEveryDocInFull) {
  this->BuildCollection(6, 5, 80, 8, 45);
  for (uint32_t d = 0; d < this->docs_.size(); ++d) {
    std::vector<Symbol> got;
    this->idx_.Extract(this->idx_.doc_start(d), this->idx_.doc_len(d), &got);
    ASSERT_EQ(got, this->docs_[d]) << "doc " << d;
  }
}

TYPED_TEST(StaticIndexTest, ExtractRandomSlices) {
  this->BuildCollection(4, 100, 300, 16, 46);
  Rng rng(9);
  for (int q = 0; q < 60; ++q) {
    uint32_t d = static_cast<uint32_t>(rng.Below(this->docs_.size()));
    const auto& doc = this->docs_[d];
    uint64_t from = rng.Below(doc.size());
    uint64_t len = rng.Below(doc.size() - from + 1);
    std::vector<Symbol> got;
    this->idx_.Extract(this->idx_.doc_start(d) + from, len, &got);
    std::vector<Symbol> expect(doc.begin() + static_cast<int64_t>(from),
                               doc.begin() + static_cast<int64_t>(from + len));
    ASSERT_EQ(got, expect);
  }
}

TYPED_TEST(StaticIndexTest, ForEachDocRowCoversExactlyDocSuffixes) {
  this->BuildCollection(5, 10, 60, 4, 47);
  std::set<uint64_t> all_rows;
  uint64_t total = 0;
  for (uint32_t d = 0; d < this->docs_.size(); ++d) {
    std::set<uint64_t> rows;
    this->idx_.ForEachDocRow(d, [&](uint64_t row) {
      EXPECT_TRUE(rows.insert(row).second) << "duplicate row";
      // Every reported row's suffix must start inside doc d.
      uint64_t pos = this->idx_.Locate(row);
      EXPECT_EQ(this->idx_.DocOfPos(pos), d);
    });
    EXPECT_EQ(rows.size(), this->docs_[d].size() + 1);
    total += rows.size();
    all_rows.insert(rows.begin(), rows.end());
  }
  // Together with the sentinel row, doc rows partition the SA.
  EXPECT_EQ(total + 1, this->idx_.NumRows());
  EXPECT_EQ(all_rows.size(), total);
}

TYPED_TEST(StaticIndexTest, DocOfPosBoundaries) {
  this->BuildCollection(3, 4, 10, 4, 48);
  for (uint32_t d = 0; d < this->docs_.size(); ++d) {
    uint64_t s = this->idx_.doc_start(d);
    uint64_t l = this->idx_.doc_len(d);
    EXPECT_EQ(this->idx_.DocOfPos(s), d);
    EXPECT_EQ(this->idx_.DocOfPos(s + l), d);  // the separator
    if (d + 1 < this->docs_.size()) {
      EXPECT_EQ(this->idx_.DocOfPos(s + l + 1), d + 1);
    }
  }
}

TYPED_TEST(StaticIndexTest, SingleDocSingleSymbol) {
  Rng rng(50);
  std::vector<Document> d;
  d.push_back({0, {5}});
  ConcatText text(d);
  auto idx = BuildIndex<TypeParam>(text);
  EXPECT_EQ(idx.NumRows(), 3u);  // "5", separator, sentinel
  RowRange r = idx.Find(std::vector<Symbol>{5});
  ASSERT_EQ(r.size(), 1u);
  EXPECT_EQ(idx.Locate(r.begin), 0u);
  EXPECT_TRUE(idx.Find(std::vector<Symbol>{6}).empty());
}

TYPED_TEST(StaticIndexTest, LargeAlphabetSparseSymbols) {
  Rng rng(51);
  std::vector<std::vector<Symbol>> docs;
  docs.push_back({100000, 2, 100000, 99999});
  docs.push_back({99999, 100000, 2});
  std::vector<Document> d;
  for (uint32_t i = 0; i < docs.size(); ++i) {
    d.push_back({i, docs[i]});
  }
  ConcatText text(d);
  auto idx = BuildIndex<TypeParam>(text);
  std::vector<Symbol> p{100000};
  RowRange r = idx.Find(p);
  EXPECT_EQ(r.size(), 3u);
}

TYPED_TEST(StaticIndexTest, RepetitiveCollection) {
  // Many identical documents: every pattern occurrence appears in each.
  std::vector<Symbol> unit{2, 3, 2, 3, 4};
  std::vector<Document> d;
  for (uint32_t i = 0; i < 20; ++i) d.push_back({i, unit});
  ConcatText text(d);
  auto idx = BuildIndex<TypeParam>(text);
  std::vector<Symbol> p{2, 3};
  RowRange r = idx.Find(p);
  EXPECT_EQ(r.size(), 40u);  // two occurrences per doc
}

class FmSampleRateTest : public ::testing::TestWithParam<uint32_t> {};

TEST_P(FmSampleRateTest, LocateCorrectAtEverySampleRate) {
  Rng rng(60);
  auto docs = RandomDocs(rng, 5, 50, 150, 8);
  std::vector<Document> d;
  for (uint32_t i = 0; i < docs.size(); ++i) {
    d.push_back({i, docs[i]});
  }
  ConcatText text(d);
  FmIndex::Options opt;
  opt.sample_rate = GetParam();
  FmIndex idx = FmIndex::Build(text, opt);
  for (int q = 0; q < 20; ++q) {
    auto p = SamplePattern(rng, docs, 3, 8);
    RowRange r = idx.Find(p);
    std::vector<std::pair<uint32_t, uint64_t>> got;
    for (uint64_t row = r.begin; row < r.end; ++row) {
      uint64_t pos = idx.Locate(row);
      uint32_t dd = idx.DocOfPos(pos);
      got.emplace_back(dd, pos - idx.doc_start(dd));
    }
    std::sort(got.begin(), got.end());
    ASSERT_EQ(got, NaiveOccurrences(docs, p)) << "s=" << GetParam();
  }
}

INSTANTIATE_TEST_SUITE_P(SampleRates, FmSampleRateTest,
                         ::testing::Values(1u, 2u, 4u, 32u, 128u, 1024u));

}  // namespace
}  // namespace dyndex
