// Deterministic tests for reader-progress-aware write pacing in EpochGuard
// (serve/epoch_guard.h): the stalled-reader -> even-window handshake, debt
// consumption, the bounded-delay guarantee, the unconditional
// (stall_threshold == 0) write-rate-limiter mode, and the atomic-snapshot
// policy setters (clamping, no tearing, changeable mid-flight).
//
// The handshake test stages the starvation signal by hand: a writer thread
// parks inside an exclusive section (Maintain with a blocking body) while a
// reader with a tiny spin budget observes the odd sequence, bumps
// capture_stalled, and falls back to the lock. The next Write() must then
// answer the debt with a paced even window — and the one after it, with the
// debt consumed, must not pace.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <thread>

#include "serve/epoch_guard.h"

namespace dyndex {
namespace {

struct Counter {
  uint64_t value = 0;
};

using Guard = EpochGuard<Counter>;

/// Parks a writer inside an exclusive section (sequence odd) until released,
/// and while it is parked runs a reader whose capture must stall. Returns
/// after both threads joined, leaving exactly `stalls` of stall debt.
void StageStallDebt(Guard& guard, uint32_t stalls) {
  OptimisticPolicy impatient;
  impatient.max_attempts = 1;
  impatient.spin_limit = 4;
  guard.set_optimistic_policy(impatient);
  for (uint32_t i = 0; i < stalls; ++i) {
    const uint64_t before = guard.optimistic_stats().capture_stalled;
    std::atomic<bool> entered{false};
    std::atomic<bool> release{false};
    std::thread writer([&] {
      guard.Maintain([&](Counter&) {
        entered.store(true, std::memory_order_release);
        while (!release.load(std::memory_order_acquire)) {
          std::this_thread::yield();
        }
      });
    });
    while (!entered.load(std::memory_order_acquire)) {
      std::this_thread::yield();
    }
    std::thread reader([&] {
      // Sequence is odd: the capture stalls, exhausts its 4 spins, and the
      // read falls back to the shared lock (which waits out the section).
      guard.Read(nullptr, [](const Counter& c) { return c.value; });
    });
    while (guard.optimistic_stats().capture_stalled == before) {
      std::this_thread::yield();
    }
    release.store(true, std::memory_order_release);
    writer.join();
    reader.join();
  }
}

TEST(ServePacing, StalledReaderDebtTriggersBoundedPace) {
  Guard guard(std::make_unique<Counter>());
  guard.Write([](Counter& c) { ++c.value; });  // start the pacing clock
  StageStallDebt(guard, 1);
  const OptimisticStats stats = guard.optimistic_stats();
  EXPECT_GE(stats.capture_stalled, 1u);
  EXPECT_GE(stats.capture_exhausted, 1u);  // the staged reader's fallback

  PacingPolicy pacing;
  pacing.min_even_window_us = 100000;  // 100 ms window...
  pacing.max_delay_us = 10000;         // ...but at most 10 ms of delay
  pacing.stall_threshold = 1;
  guard.set_pacing_policy(pacing);

  // Debt outstanding: this Write must sleep, and the sleep must respect
  // max_delay_us (the bounded-delay half of the fairness guarantee).
  const PacingStats before = guard.pacing_stats();
  guard.Write([](Counter& c) { ++c.value; });
  const PacingStats after = guard.pacing_stats();
  EXPECT_EQ(after.waits - before.waits, 1u);
  EXPECT_GT(after.wait_us, before.wait_us);
  EXPECT_LE(after.wait_us - before.wait_us, 10000u);

  // Debt consumed: the next Write admits immediately.
  guard.Write([](Counter& c) { ++c.value; });
  EXPECT_EQ(guard.pacing_stats().waits, after.waits);
}

TEST(ServePacing, ElapsedWindowAnswersDebtWithoutSleeping) {
  Guard guard(std::make_unique<Counter>());
  guard.Write([](Counter& c) { ++c.value; });
  StageStallDebt(guard, 1);
  PacingPolicy pacing;
  pacing.min_even_window_us = 20000;
  pacing.max_delay_us = 20000;
  pacing.stall_threshold = 1;
  guard.set_pacing_policy(pacing);
  // Let the window elapse on its own: the debt is answered by the idle
  // time, so the next Write neither sleeps nor leaves the debt pending.
  std::this_thread::sleep_for(std::chrono::milliseconds(30));
  guard.Write([](Counter& c) { ++c.value; });
  EXPECT_EQ(guard.pacing_stats().waits, 0u);
  guard.Write([](Counter& c) { ++c.value; });  // no new stalls: no pace
  EXPECT_EQ(guard.pacing_stats().waits, 0u);
}

TEST(ServePacing, NoStallsNoPace) {
  Guard guard(std::make_unique<Counter>());
  PacingPolicy pacing;
  pacing.min_even_window_us = 50000;
  pacing.max_delay_us = 50000;
  pacing.stall_threshold = 1;
  guard.set_pacing_policy(pacing);
  // Readers that never stall never slow the writer: back-to-back batches
  // admit immediately under the conditional mode.
  for (int i = 0; i < 4; ++i) {
    guard.Write([](Counter& c) { ++c.value; });
    guard.Read(nullptr, [](const Counter& c) { return c.value; });
  }
  EXPECT_EQ(guard.pacing_stats().waits, 0u);
}

TEST(ServePacing, UnconditionalModePacesEveryBatch) {
  Guard guard(std::make_unique<Counter>());
  guard.Write([](Counter& c) { ++c.value; });
  PacingPolicy pacing;
  pacing.min_even_window_us = 5000;
  pacing.max_delay_us = 5000;
  pacing.stall_threshold = 0;  // write-rate-limiter mode
  guard.set_pacing_policy(pacing);
  // No reader ever ran, yet every back-to-back batch waits out the window.
  for (int i = 0; i < 3; ++i) {
    guard.Write([](Counter& c) { ++c.value; });
  }
  const PacingStats stats = guard.pacing_stats();
  EXPECT_EQ(stats.waits, 3u);
  EXPECT_LE(stats.wait_us, 3u * 5000u);
  // Disabled policy (the default): admission is immediate again.
  guard.set_pacing_policy(PacingPolicy{});
  guard.Write([](Counter& c) { ++c.value; });
  EXPECT_EQ(guard.pacing_stats().waits, stats.waits);
}

TEST(ServePacing, PoliciesClampToPackedWidthsAndRoundTrip) {
  Guard guard(std::make_unique<Counter>());
  PacingPolicy wide;
  wide.min_even_window_us = 0xFFFFFFFF;  // > 24-bit packed field
  wide.max_delay_us = 1234;
  wide.stall_threshold = 0x12345;  // > 16-bit packed field
  guard.set_pacing_policy(wide);
  const PacingPolicy got = guard.pacing_policy();
  EXPECT_EQ(got.min_even_window_us, (1u << 24) - 1);
  EXPECT_EQ(got.max_delay_us, 1234u);
  EXPECT_EQ(got.stall_threshold, 65535u);

  OptimisticPolicy opt;
  opt.max_attempts = 7;
  opt.spin_limit = 4096;
  guard.set_optimistic_policy(opt);
  const OptimisticPolicy opt_got = guard.optimistic_policy();
  EXPECT_EQ(opt_got.max_attempts, 7u);
  EXPECT_EQ(opt_got.spin_limit, 4096u);
}

TEST(ServePacing, PoliciesChangeWithReadersAndWriterInFlight) {
  // Both policies are one atomic word, so flipping them mid-flight (readers
  // looping, writer churning) must never tear or wedge anyone. The
  // accounting invariant (validated + locked == total reads) doubles as the
  // consistency check.
  Guard guard(std::make_unique<Counter>());
  std::atomic<bool> done{false};
  std::atomic<uint64_t> reads{0};
  std::thread reader([&] {
    uint64_t n = 0;
    while (!done.load(std::memory_order_acquire)) {
      guard.Read(nullptr, [](const Counter& c) { return c.value; });
      ++n;
    }
    reads.fetch_add(n, std::memory_order_relaxed);
  });
  std::thread writer([&] {
    while (!done.load(std::memory_order_acquire)) {
      guard.Write([](Counter& c) { ++c.value; });
      std::this_thread::yield();
    }
  });
  for (int flip = 0; flip < 200; ++flip) {
    OptimisticPolicy opt;
    opt.max_attempts = static_cast<uint32_t>(flip % 4);
    opt.spin_limit = 16;
    guard.set_optimistic_policy(opt);
    PacingPolicy pacing;
    if (flip % 2 == 0) {
      pacing.min_even_window_us = 50;
      pacing.max_delay_us = 100;
      pacing.stall_threshold = static_cast<uint32_t>(flip % 3);
    }
    guard.set_pacing_policy(pacing);
    std::this_thread::yield();
  }
  done.store(true, std::memory_order_release);
  reader.join();
  writer.join();
  const OptimisticStats stats = guard.optimistic_stats();
  EXPECT_EQ(stats.validated + stats.locked_reads, reads.load());
  EXPECT_EQ(stats.fallbacks,
            stats.capture_exhausted + stats.retries_exhausted);
}

}  // namespace
}  // namespace dyndex
