// Model tests of Transformations 1 and 3: every query answer is checked
// against a naive reference collection through randomized insert/erase/query
// churn, across both static index types and both growth policies.
#include "core/dynamic_collection.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <vector>

#include "gen/text_gen.h"
#include "text/fm_index.h"
#include "text/packed_sa_index.h"
#include "util/rng.h"

namespace dyndex {
namespace {

template <typename Coll>
std::vector<Occurrence> SortedFind(const Coll& c,
                                   const std::vector<Symbol>& p) {
  auto v = c.Find(p);
  std::sort(v.begin(), v.end());
  return v;
}

std::vector<Occurrence> NaiveFind(
    const std::map<DocId, std::vector<Symbol>>& model,
    const std::vector<Symbol>& p) {
  std::vector<Occurrence> out;
  for (const auto& [id, doc] : model) {
    if (doc.size() < p.size()) continue;
    for (uint64_t i = 0; i + p.size() <= doc.size(); ++i) {
      if (std::equal(p.begin(), p.end(),
                     doc.begin() + static_cast<int64_t>(i))) {
        out.push_back({id, i});
      }
    }
  }
  return out;
}

// Small min_c0 forces the merge cascade to exercise on test-sized inputs.
DynamicCollectionOptions SmallOptions(bool counting = false) {
  DynamicCollectionOptions opt;
  opt.min_c0 = 64;
  opt.counting = counting;
  return opt;
}

template <typename Coll>
void RunChurnModel(Coll& coll, uint64_t seed, int steps, uint32_t sigma,
                   uint64_t max_doc_len) {
  std::map<DocId, std::vector<Symbol>> model;
  Rng rng(seed);
  for (int step = 0; step < steps; ++step) {
    uint64_t op = rng.Below(10);
    if (op < 5 || model.empty()) {
      auto doc = UniformText(rng, rng.Range(1, max_doc_len), sigma);
      DocId id = coll.Insert(doc);
      ASSERT_TRUE(model.emplace(id, std::move(doc)).second);
    } else if (op < 7) {
      auto it = model.begin();
      std::advance(it, static_cast<int64_t>(rng.Below(model.size())));
      ASSERT_TRUE(coll.Erase(it->first));
      model.erase(it);
    } else if (op < 9) {
      std::vector<std::vector<Symbol>> live;
      for (const auto& [id, d] : model) live.push_back(d);
      auto p = SamplePattern(rng, live, rng.Range(1, 6), sigma);
      ASSERT_EQ(SortedFind(coll, p), NaiveFind(model, p)) << "step " << step;
      ASSERT_EQ(coll.Count(p), NaiveFind(model, p).size()) << "step " << step;
    } else {
      if (model.empty()) continue;
      auto it = model.begin();
      std::advance(it, static_cast<int64_t>(rng.Below(model.size())));
      const auto& doc = it->second;
      uint64_t from = rng.Below(doc.size());
      uint64_t len = rng.Below(doc.size() - from + 1);
      auto begin = doc.begin() + static_cast<int64_t>(from);
      std::vector<Symbol> expect(begin, begin + static_cast<int64_t>(len));
      ASSERT_EQ(coll.Extract(it->first, from, len), expect) << "step " << step;
    }
    if (step % 100 == 99) coll.CheckInvariants();
  }
  // Final exhaustive comparison.
  ASSERT_EQ(coll.num_docs(), model.size());
  uint64_t total = 0;
  for (const auto& [id, d] : model) {
    ASSERT_TRUE(coll.Contains(id));
    ASSERT_EQ(coll.DocLenOf(id), d.size());
    total += d.size();
  }
  ASSERT_EQ(coll.live_symbols(), total);
  coll.CheckInvariants();
}

TEST(DynamicCollectionT1Fm, ChurnModel) {
  DynamicCollectionT1<FmIndex> coll(SmallOptions());
  RunChurnModel(coll, 1001, 600, 4, 100);
}

TEST(DynamicCollectionT1Fm, ChurnModelWithCounting) {
  DynamicCollectionT1<FmIndex> coll(SmallOptions(true));
  RunChurnModel(coll, 1002, 500, 6, 80);
}

TEST(DynamicCollectionT1Packed, ChurnModel) {
  DynamicCollectionT1<PackedSaIndex> coll(SmallOptions());
  RunChurnModel(coll, 1003, 600, 4, 100);
}

TEST(DynamicCollectionT3Fm, ChurnModelDoublingPolicy) {
  DynamicCollectionT3<FmIndex> coll(SmallOptions());
  RunChurnModel(coll, 1004, 600, 4, 100);
}

TEST(DynamicCollectionT1Fm, LargeAlphabetChurn) {
  DynamicCollectionT1<FmIndex> coll(SmallOptions());
  RunChurnModel(coll, 1005, 300, 1000, 60);
}

TEST(DynamicCollectionT1Fm, BigDocumentsTriggerDirectPlacement) {
  DynamicCollectionOptions opt = SmallOptions();
  DynamicCollectionT1<FmIndex> coll(opt);
  std::map<DocId, std::vector<Symbol>> model;
  Rng rng(1006);
  // A document far larger than C0's capacity must be indexed and queryable.
  auto big = UniformText(rng, 5000, 4);
  DocId id = coll.Insert(big);
  model[id] = big;
  auto small = UniformText(rng, 10, 4);
  DocId id2 = coll.Insert(small);
  model[id2] = small;
  std::vector<std::vector<Symbol>> live{big, small};
  for (int q = 0; q < 20; ++q) {
    auto p = SamplePattern(rng, live, 4, 4);
    ASSERT_EQ(SortedFind(coll, p), NaiveFind(model, p));
  }
  coll.CheckInvariants();
}

TEST(DynamicCollectionT1Fm, InsertOnlyGrowthCascade) {
  DynamicCollectionT1<FmIndex> coll(SmallOptions());
  std::map<DocId, std::vector<Symbol>> model;
  Rng rng(1007);
  for (int i = 0; i < 300; ++i) {
    auto doc = UniformText(rng, rng.Range(5, 40), 4);
    DocId id = coll.Insert(doc);
    model[id] = doc;
  }
  coll.CheckInvariants();
  EXPECT_GE(coll.num_levels(), 1u);  // cascade must have spilled out of C0
  for (int q = 0; q < 30; ++q) {
    std::vector<std::vector<Symbol>> live;
    for (const auto& [id, d] : model) live.push_back(d);
    auto p = SamplePattern(rng, live, rng.Range(1, 5), 4);
    ASSERT_EQ(SortedFind(coll, p), NaiveFind(model, p));
  }
}

TEST(DynamicCollectionT1Fm, DeleteEverythingThenReuse) {
  DynamicCollectionT1<FmIndex> coll(SmallOptions());
  Rng rng(1008);
  std::vector<DocId> ids;
  for (int i = 0; i < 100; ++i) {
    ids.push_back(coll.Insert(UniformText(rng, 30, 4)));
  }
  for (DocId id : ids) ASSERT_TRUE(coll.Erase(id));
  EXPECT_EQ(coll.num_docs(), 0u);
  EXPECT_EQ(coll.live_symbols(), 0u);
  EXPECT_TRUE(coll.Find({2, 3}).empty());
  // The structure is reusable after total deletion.
  auto doc = UniformText(rng, 25, 4);
  DocId id = coll.Insert(doc);
  EXPECT_EQ(coll.Extract(id, 0, 25), doc);
}

TEST(DynamicCollectionT1Fm, EraseUnknownIdReturnsFalse) {
  DynamicCollectionT1<FmIndex> coll(SmallOptions());
  EXPECT_FALSE(coll.Erase(12345));
  DocId id = coll.Insert({2, 3, 4});
  EXPECT_TRUE(coll.Erase(id));
  EXPECT_FALSE(coll.Erase(id));
}

TEST(DynamicCollectionT1Fm, OccurrencePositionsAreDocRelative) {
  DynamicCollectionT1<FmIndex> coll(SmallOptions());
  std::vector<Symbol> a{5, 6, 7};
  std::vector<Symbol> b{9, 9, 5, 6, 7};
  DocId ia = coll.Insert(a);
  DocId ib = coll.Insert(b);
  auto occ = SortedFind(coll, {5, 6, 7});
  ASSERT_EQ(occ.size(), 2u);
  EXPECT_EQ(occ[0], (Occurrence{ia, 0}));
  EXPECT_EQ(occ[1], (Occurrence{ib, 2}));
  // Deleting the first doc must not shift the second doc's offsets.
  coll.Erase(ia);
  occ = SortedFind(coll, {5, 6, 7});
  ASSERT_EQ(occ.size(), 1u);
  EXPECT_EQ(occ[0], (Occurrence{ib, 2}));
}

TEST(DynamicCollectionT1Fm, SpaceBreakdownIsPopulated) {
  DynamicCollectionT1<FmIndex> coll(SmallOptions());
  Rng rng(1009);
  for (int i = 0; i < 200; ++i) coll.Insert(UniformText(rng, 50, 4));
  SpaceBreakdown sp = coll.Space();
  EXPECT_GT(sp.static_indexes, 0u);
  EXPECT_GT(sp.total(), 0u);
}

TEST(DynamicCollectionT3Fm, MoreLevelsThanT1) {
  // The doubling policy should produce at least as many levels as the
  // polylog policy on identical input.
  DynamicCollectionT1<FmIndex> t1(SmallOptions());
  DynamicCollectionT3<FmIndex> t3(SmallOptions());
  Rng rng1(1010), rng3(1010);
  for (int i = 0; i < 400; ++i) {
    t1.Insert(UniformText(rng1, 20, 4));
    t3.Insert(UniformText(rng3, 20, 4));
  }
  EXPECT_GE(t3.num_levels(), t1.num_levels());
}

}  // namespace
}  // namespace dyndex
