// High-contention stress and deterministic protocol tests for the optimistic
// seqlock read path of EpochGuard (serve/epoch_guard.h).
//
// The stress scenarios run a toy backend whose state is published through
// SeqBox (util/seq_hash_map.h) — the same single-pointer immutable-snapshot
// discipline the real backends use — so every Read() result must be
// internally consistent no matter how the seqlock interleaves with the
// writer: validated optimistic reads saw a quiescent window, locked reads
// hold the shared lock, and torn attempts are discarded. The deterministic
// tests drive the retry, fallback, and reclamation machinery through the
// injectable read-interlope hook and the retry budget (max_attempts),
// including the budget-0 locked baseline.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <memory>
#include <thread>
#include <vector>

#include "gen/text_gen.h"
#include "serve/concurrent_index.h"
#include "serve/dynamic_index.h"
#include "serve/epoch_guard.h"
#include "util/rng.h"
#include "util/seq_hash_map.h"

namespace dyndex {
namespace {

// --- toy backend ------------------------------------------------------------

/// State readers traverse with no lock: a SeqBox-published vector where every
/// entry equals the write generation, plus growth to force snapshot churn.
struct ToyBackend {
  SeqBox<std::vector<uint64_t>> data;
  uint64_t writes = 0;
};

struct ToySample {
  uint64_t len = 0;
  uint64_t first = 0;
  uint64_t sum = 0;
};

ToySample ReadToy(const ToyBackend& b) {
  ToySample out;
  if (const std::vector<uint64_t>* v = b.data.Load()) {
    out.len = v->size();
    if (!v->empty()) out.first = (*v)[0];
    for (uint64_t x : *v) out.sum += x;
  }
  return out;
}

/// One write generation: every entry becomes `gen`, and every few generations
/// the vector grows (Store retires the previous snapshot — reclamation load).
void WriteToy(ToyBackend& b, uint64_t gen) {
  std::vector<uint64_t> next = b.data.Copy();
  if (next.empty() || gen % 4 == 0) next.push_back(0);
  for (uint64_t& x : next) x = gen;
  b.data.Store(std::move(next));
  ++b.writes;
}

// --- high-contention stress -------------------------------------------------

/// N readers hammer the toy backend while a writer churns generations.
/// Asserts: (a) every Read() result is internally consistent (all entries
/// equal => sum == len * first), (b) the outcome counters account for every
/// read, (c) reclamation drains once quiesced.
void RunToyStress(uint32_t max_attempts, int readers, uint64_t writes,
                  uint64_t seed) {
  EpochGuard<ToyBackend> guard(std::make_unique<ToyBackend>());
  OptimisticPolicy policy;
  policy.max_attempts = max_attempts;
  guard.set_optimistic_policy(policy);

  std::atomic<bool> done{false};
  std::atomic<uint64_t> total_reads{0};
  std::atomic<uint64_t> inconsistent{0};
  std::vector<std::thread> pool;
  for (int r = 0; r < readers; ++r) {
    pool.emplace_back([&, r] {
      Rng rng(seed * 977 + static_cast<uint64_t>(r));
      uint64_t n = 0;
      while (!done.load(std::memory_order_acquire)) {
        uint64_t epoch = 0;
        ToySample s = guard.Read(
            &epoch, [](const ToyBackend& b) { return ReadToy(b); });
        if (s.sum != s.len * s.first) {
          inconsistent.fetch_add(1, std::memory_order_relaxed);
        }
        ++n;
        if (rng.Below(64) == 0) std::this_thread::yield();
      }
      total_reads.fetch_add(n, std::memory_order_relaxed);
    });
  }
  for (uint64_t g = 1; g <= writes; ++g) {
    guard.Write([g](ToyBackend& b) { WriteToy(b, g); });
    if (g % 16 == 0) std::this_thread::yield();
  }
  done.store(true, std::memory_order_release);
  for (auto& t : pool) t.join();

  EXPECT_EQ(inconsistent.load(), 0u);
  EXPECT_GT(total_reads.load(), 0u);
  const OptimisticStats stats = guard.optimistic_stats();
  // Every Read() ends exactly one way: validated lock-free or served under
  // the shared lock (fallback, budget 0, or slot exhaustion).
  EXPECT_EQ(stats.validated + stats.locked_reads, total_reads.load());
  if (max_attempts == 0) {
    EXPECT_EQ(stats.attempts, 0u);
    EXPECT_EQ(stats.locked_reads, total_reads.load());
  } else {
    EXPECT_GT(stats.attempts, 0u);
  }
  guard.Read(nullptr, [&](const ToyBackend& b) {
    EXPECT_EQ(b.writes, writes);
    return 0;
  });
  // Quiesced: every parked snapshot's grace period is closed.
  guard.ReclaimRetired();
  EXPECT_EQ(guard.retired_pending(), 0u);
}

TEST(ServeOptimisticStress, HighContentionValidatedReaders) {
  RunToyStress(/*max_attempts=*/3, /*readers=*/4, /*writes=*/4000,
               /*seed=*/42);
}

TEST(ServeOptimisticStress, HighContentionTinyBudget) {
  // max_attempts=1: any validation failure falls straight back to the lock,
  // so the fallback path runs hot under the same consistency assertions.
  RunToyStress(/*max_attempts=*/1, /*readers=*/4, /*writes=*/4000,
               /*seed=*/1337);
}

TEST(ServeOptimisticStress, HighContentionLockedBaseline) {
  RunToyStress(/*max_attempts=*/0, /*readers=*/4, /*writes=*/2000,
               /*seed=*/7);
}

// --- deterministic retry / fallback ----------------------------------------

TEST(ServeOptimisticStress, InterlopedWriteForcesRetryThenFallback) {
  EpochGuard<ToyBackend> guard(std::make_unique<ToyBackend>());
  guard.Write([](ToyBackend& b) { WriteToy(b, 1); });
  OptimisticPolicy policy;
  policy.max_attempts = 2;
  guard.set_optimistic_policy(policy);
  // The hook runs after each optimistic attempt, before validation; a
  // Maintain() there moves the sequence, so every attempt must be discarded
  // and the read must exhaust its budget and take the lock.
  guard.set_read_interlope([&] { guard.Maintain([](ToyBackend&) {}); });
  const OptimisticStats before = guard.optimistic_stats();
  ToySample s =
      guard.Read(nullptr, [](const ToyBackend& b) { return ReadToy(b); });
  guard.set_read_interlope(nullptr);
  EXPECT_EQ(s.sum, s.len * s.first);
  const OptimisticStats after = guard.optimistic_stats();
  EXPECT_EQ(after.attempts - before.attempts, 2u);
  EXPECT_EQ(after.retries - before.retries, 2u);
  EXPECT_EQ(after.validated - before.validated, 0u);
  EXPECT_EQ(after.fallbacks - before.fallbacks, 1u);
  EXPECT_EQ(after.locked_reads - before.locked_reads, 1u);
}

TEST(ServeOptimisticStress, ZeroBudgetNeverAttempts) {
  EpochGuard<ToyBackend> guard(std::make_unique<ToyBackend>());
  OptimisticPolicy policy;
  policy.max_attempts = 0;
  guard.set_optimistic_policy(policy);
  for (int i = 0; i < 8; ++i) {
    guard.Read(nullptr, [](const ToyBackend& b) { return ReadToy(b); });
  }
  const OptimisticStats stats = guard.optimistic_stats();
  EXPECT_EQ(stats.attempts, 0u);
  EXPECT_EQ(stats.validated, 0u);
  EXPECT_EQ(stats.locked_reads, 8u);
}

// --- deterministic reclamation ----------------------------------------------

struct DtorFlag {
  explicit DtorFlag(bool* flag) : flag_(flag) {}
  DtorFlag(DtorFlag&& o) noexcept : flag_(o.flag_) { o.flag_ = nullptr; }
  DtorFlag& operator=(DtorFlag&&) = delete;
  ~DtorFlag() {
    if (flag_ != nullptr) *flag_ = true;
  }
  bool* flag_;
};

TEST(ServeOptimisticStress, ReclamationWaitsForInFlightReader) {
  EpochGuard<ToyBackend> guard(std::make_unique<ToyBackend>());
  OptimisticPolicy policy;
  policy.max_attempts = 1;
  guard.set_optimistic_policy(policy);
  bool destroyed = false;
  uint64_t pending_during_read = 0;
  // The hook fires while this reader's slot still publishes the pre-write
  // sequence, so the write's retired batch must survive the drain at the end
  // of the exclusive section: the reader could still be traversing it.
  guard.set_read_interlope([&] {
    guard.Write([&](ToyBackend&) { Retire(DtorFlag(&destroyed)); });
    pending_during_read = guard.retired_pending();
  });
  guard.Read(nullptr, [](const ToyBackend& b) { return ReadToy(b); });
  guard.set_read_interlope(nullptr);
  EXPECT_GE(pending_during_read, 1u);
  EXPECT_FALSE(destroyed);  // grace period still open at park time
  // Reader finished (slot released): the grace period is closed.
  guard.ReclaimRetired();
  EXPECT_TRUE(destroyed);
  EXPECT_EQ(guard.retired_pending(), 0u);
}

TEST(ServeOptimisticStress, RetireWithNoReaderFreesAtSectionEnd) {
  EpochGuard<ToyBackend> guard(std::make_unique<ToyBackend>());
  bool destroyed = false;
  guard.Write([&](ToyBackend&) { Retire(DtorFlag(&destroyed)); });
  // No reader slot was active, so the end-of-section drain freed the batch.
  EXPECT_TRUE(destroyed);
  EXPECT_EQ(guard.retired_pending(), 0u);
}

// --- full stack under a tiny retry budget ------------------------------------

/// Immortal-document extraction against ConcurrentIndex while a writer churns
/// batches, with max_attempts=1 so validation failures exercise the fallback
/// path through the whole T2 backend stack.
TEST(ServeOptimisticStress, IndexChurnTinyBudget) {
  constexpr uint32_t kSigma = 4;
  constexpr uint32_t kNumImmortal = 4;
  Rng rng(2024);
  std::vector<std::vector<Symbol>> immortal;
  for (uint32_t i = 0; i < kNumImmortal; ++i) {
    immortal.push_back(UniformText(rng, rng.Range(8, 40), kSigma));
  }
  DynamicIndexOptions opt;
  opt.min_c0 = 64;
  opt.mode = RebuildMode::kThreaded;
  ConcurrentIndex index(MakeDynamicIndex(Backend::kT2, opt));
  OptimisticPolicy policy;
  policy.max_attempts = 1;
  index.set_optimistic_policy(policy);
  index.InsertBatch(immortal);

  std::atomic<bool> done{false};
  std::atomic<uint64_t> mismatches{0};
  std::vector<std::thread> pool;
  for (int r = 0; r < 4; ++r) {
    pool.emplace_back([&, r] {
      Rng rd(5000 + static_cast<uint64_t>(r));
      while (!done.load(std::memory_order_acquire)) {
        DocId id = rd.Below(kNumImmortal);
        std::vector<Symbol> got;
        uint64_t epoch = 0;
        bool present =
            index.Extract(id, 0, immortal[id].size(), &got, &epoch);
        if (!present || got != immortal[id]) {
          mismatches.fetch_add(1, std::memory_order_relaxed);
        }
      }
    });
  }
  Rng wr(6000);
  std::vector<DocId> churn;
  for (int b = 0; b < 60; ++b) {
    std::vector<DocId> ids = index.InsertBatch(
        {UniformText(wr, wr.Range(10, 120), kSigma)});
    churn.insert(churn.end(), ids.begin(), ids.end());
    if (churn.size() > 8) {
      std::vector<DocId> victims(churn.begin(), churn.begin() + 4);
      churn.erase(churn.begin(), churn.begin() + 4);
      index.EraseBatch(victims);
    }
  }
  done.store(true, std::memory_order_release);
  for (auto& t : pool) t.join();
  EXPECT_EQ(mismatches.load(), 0u);
  const OptimisticStats stats = index.optimistic_stats();
  EXPECT_GT(stats.attempts, 0u);
  index.Flush();
  index.unsynchronized().CheckInvariants();
}

// --- starvation regression under a continuous writer -------------------------

/// The PR-7 regression: a writer looping batches back-to-back must not
/// starve the validated lock-free read path. With write pacing enabled
/// (unconditional mode: every admission waits out a 2 ms even window) the
/// validated count has to keep accruing in every measurement window while
/// the writer demonstrably keeps making progress — and the writer must
/// actually have been paced. Runs under TSan via the concurrency label
/// (lock-assisted attempts there still validate and count).
TEST(ServeOptimisticStress, PacedWriterNeverStarvesValidatedReaders) {
  constexpr uint32_t kSigma = 4;
  Rng rng(909);
  DynamicIndexOptions opt;
  opt.min_c0 = 64;
  opt.mode = RebuildMode::kThreaded;
  ConcurrentIndex index(MakeDynamicIndex(Backend::kT2, opt));
  std::vector<std::vector<Symbol>> docs;
  for (int i = 0; i < 8; ++i) {
    docs.push_back(UniformText(rng, rng.Range(16, 64), kSigma));
  }
  index.InsertBatch(docs);
  OptimisticPolicy policy;
  policy.max_attempts = 3;
  index.set_optimistic_policy(policy);
  PacingPolicy pacing;
  pacing.min_even_window_us = 2000;
  pacing.max_delay_us = 2000;
  pacing.stall_threshold = 0;
  index.set_pacing_policy(pacing);

  std::atomic<bool> done{false};
  std::atomic<uint64_t> batches{0};
  std::thread writer([&] {
    Rng wr(910);
    std::vector<DocId> churn;
    while (!done.load(std::memory_order_acquire)) {
      std::vector<DocId> ids =
          index.InsertBatch({UniformText(wr, wr.Range(16, 64), kSigma)});
      churn.insert(churn.end(), ids.begin(), ids.end());
      if (churn.size() > 8) {
        std::vector<DocId> victims(churn.begin(), churn.begin() + 4);
        churn.erase(churn.begin(), churn.begin() + 4);
        index.EraseBatch(victims);
      }
      batches.fetch_add(1, std::memory_order_release);
    }
  });
  std::vector<std::thread> readers;
  for (int r = 0; r < 2; ++r) {
    readers.emplace_back([&, r] {
      Rng rd(920 + static_cast<uint64_t>(r));
      std::vector<Symbol> pattern(2);
      while (!done.load(std::memory_order_acquire)) {
        pattern[0] = static_cast<Symbol>(rd.Below(kSigma));
        pattern[1] = static_cast<Symbol>(rd.Below(kSigma));
        uint64_t c = index.Count(pattern);
        (void)c;
      }
    });
  }
  // Four measurement windows, each scoped by *writer progress* (>= 3 more
  // batches) rather than wall clock, so the assertion is exactly "while the
  // writer loops continuously, validated lock-free reads keep accruing".
  for (int window = 0; window < 4; ++window) {
    const uint64_t v0 = index.optimistic_stats().validated;
    const uint64_t b0 = batches.load(std::memory_order_acquire);
    while (batches.load(std::memory_order_acquire) < b0 + 3) {
      std::this_thread::yield();
    }
    EXPECT_GT(index.optimistic_stats().validated, v0)
        << "no validated lock-free read in window " << window;
  }
  done.store(true, std::memory_order_release);
  writer.join();
  for (auto& t : readers) t.join();
  const OptimisticStats stats = index.optimistic_stats();
  EXPECT_GE(stats.validated, 64u);  // the floor: readers ran lock-free
  EXPECT_GT(index.pacing_stats().waits, 0u);  // the writer really was paced
  index.Flush();
  index.unsynchronized().CheckInvariants();
}

}  // namespace
}  // namespace dyndex
